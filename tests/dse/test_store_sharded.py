"""Sharded RunStore layout: routing, index-accelerated resume, migration.

The sharded layout must honor the exact store contract the single-file
tests pin down (last-per-key wins, torn-tail tolerance, concurrent
writers), while adding per-shard locking and an index sidecar that makes
resume O(unique keys) instead of O(append history).
"""

from __future__ import annotations

import json
import multiprocessing as mp

import pytest

from repro.dse.store import (
    MANIFEST_NAME,
    TIER_GREEDY,
    TIER_ILP,
    RunEntry,
    RunStore,
)

pytestmark = pytest.mark.dse

OBJECTIVES = {"area": 1.0, "energy": 2.0, "latency": 3.0}


def _entry(fingerprint: str, **kwargs) -> RunEntry:
    return RunEntry(
        fingerprint=fingerprint,
        tier=kwargs.pop("tier", TIER_ILP),
        scenario={"kind": "scenario"},
        status=kwargs.pop("status", "ok"),
        objectives=kwargs.pop("objectives", dict(OBJECTIVES)),
        **kwargs,
    )


def _hex_fp(i: int) -> str:
    return f"{i:08x}deadbeef"


class TestShardedLayout:
    def test_creates_manifest_and_routes_by_prefix(self, tmp_path):
        root = tmp_path / "runs"
        store = RunStore(root, shards=4)
        assert store.shards == 4
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest == {"format": 1, "shards": 4}
        for i in range(16):
            store.record(_entry(_hex_fp(i)))
        store.close()
        # Every hex fingerprint landed on the shard its prefix names.
        for i in range(16):
            shard = i % 4  # int("0000000i", 16) % 4
            data = (root / f"shard-{shard:03d}.jsonl").read_text()
            assert _hex_fp(i) in data

    def test_non_hex_fingerprints_route_stably(self, tmp_path):
        store = RunStore(tmp_path / "runs", shards=3)
        store.record(_entry("invalid-construction-error"))
        store.close()
        loaded = RunStore(tmp_path / "runs")
        assert loaded.get("invalid-construction-error") is not None

    def test_reopen_autodetects_shard_count_from_manifest(self, tmp_path):
        root = tmp_path / "runs"
        with RunStore(root, shards=5) as store:
            store.record(_entry(_hex_fp(1)))
        # No shards= argument, and a *wrong* one: manifest wins both times.
        assert RunStore(root).shards == 5
        assert RunStore(root, shards=2).shards == 5

    def test_directory_without_manifest_is_rejected(self, tmp_path):
        (tmp_path / "notastore").mkdir()
        with pytest.raises(ValueError, match="MANIFEST"):
            RunStore(tmp_path / "notastore")

    def test_last_write_per_key_wins_across_reopen(self, tmp_path):
        root = tmp_path / "runs"
        with RunStore(root, shards=2) as store:
            store.record(_entry(_hex_fp(1), tier=TIER_GREEDY))
            store.record(_entry(_hex_fp(1), meta={"round": 1}))
            store.record(_entry(_hex_fp(1), meta={"round": 2}))
        loaded = RunStore(root)
        assert loaded.get(_hex_fp(1)).meta == {"round": 2}
        assert loaded.get(_hex_fp(1), TIER_GREEDY) is not None
        assert len(loaded) == 2  # (fp, ilp) and (fp, greedy)


class TestIndexSidecar:
    def test_index_lines_match_data_offsets(self, tmp_path):
        root = tmp_path / "runs"
        with RunStore(root, shards=1) as store:
            for i in range(5):
                store.record(_entry(_hex_fp(i)))
        data = (root / "shard-000.jsonl").read_bytes()
        for line in (root / "shard-000.idx").read_text().splitlines():
            record = json.loads(line)
            sliced = data[record["o"] : record["o"] + record["l"]]
            assert json.loads(sliced)["fingerprint"] == record["f"]

    def test_resume_without_index_falls_back_to_full_scan(self, tmp_path):
        root = tmp_path / "runs"
        with RunStore(root, shards=1) as store:
            for i in range(4):
                store.record(_entry(_hex_fp(i)))
        (root / "shard-000.idx").unlink()
        loaded = RunStore(root)
        assert len(loaded) == 4

    def test_tail_beyond_index_is_scanned(self, tmp_path):
        """Data appended by an indexless writer still loads on resume."""
        root = tmp_path / "runs"
        with RunStore(root, shards=1) as store:
            store.record(_entry(_hex_fp(1)))
        extra = _entry(_hex_fp(2)).to_json()
        with (root / "shard-000.jsonl").open("a") as fh:
            fh.write(json.dumps(extra) + "\n")
        loaded = RunStore(root)
        assert loaded.get(_hex_fp(1)) is not None
        assert loaded.get(_hex_fp(2)) is not None

    def test_lying_index_triggers_full_scan(self, tmp_path):
        root = tmp_path / "runs"
        with RunStore(root, shards=1) as store:
            store.record(_entry(_hex_fp(1)))
            store.record(_entry(_hex_fp(2)))
        idx = root / "shard-000.idx"
        lines = idx.read_text().splitlines()
        first = json.loads(lines[0])
        first["f"] = "someone-else"  # offset now disagrees with the key
        idx.write_text(json.dumps(first) + "\n" + lines[1] + "\n")
        loaded = RunStore(root)
        assert loaded.get(_hex_fp(1)) is not None
        assert loaded.get(_hex_fp(2)) is not None

    def test_index_past_end_of_data_triggers_full_scan(self, tmp_path):
        root = tmp_path / "runs"
        with RunStore(root, shards=1) as store:
            store.record(_entry(_hex_fp(1)))
        with (root / "shard-000.idx").open("a") as fh:
            fh.write(json.dumps({"f": "x", "t": "ilp", "o": 10_000, "l": 5}) + "\n")
        loaded = RunStore(root)
        assert loaded.get(_hex_fp(1)) is not None

    def test_torn_index_tail_is_tolerated(self, tmp_path):
        root = tmp_path / "runs"
        with RunStore(root, shards=1) as store:
            store.record(_entry(_hex_fp(1)))
            store.record(_entry(_hex_fp(2)))
        with (root / "shard-000.idx").open("ab") as fh:
            fh.write(b'{"f": "torn')
        loaded = RunStore(root)
        assert len(loaded) == 2

    def test_torn_data_tail_is_healed_on_next_append(self, tmp_path):
        root = tmp_path / "runs"
        store = RunStore(root, shards=1)
        store.record(_entry(_hex_fp(1)))
        with (root / "shard-000.jsonl").open("ab") as fh:
            fh.write(b'{"format": 1, "fingerprint": "torn-vic')
        store.record(_entry(_hex_fp(2)))
        store.close()
        loaded = RunStore(root)
        assert loaded.get(_hex_fp(1)) is not None
        assert loaded.get(_hex_fp(2)) is not None


class TestMigration:
    def test_single_file_migrates_in_place_keeping_backup(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with RunStore(path) as legacy:
            for i in range(6):
                legacy.record(_entry(_hex_fp(i)))
            legacy.record(_entry(_hex_fp(0), meta={"round": 2}))  # superseded
        migrated = RunStore(path, shards=3)
        assert migrated.shards == 3
        assert path.is_dir()
        assert (path / MANIFEST_NAME).exists()
        assert len(migrated) == 6  # last-per-key, not append history
        assert migrated.get(_hex_fp(0)).meta == {"round": 2}
        backup = tmp_path / "runs.jsonl.pre-shard"
        assert backup.exists()  # nothing lost
        migrated.close()
        # And the migrated store reopens via its manifest.
        assert len(RunStore(path)) == 6

    def test_migrated_store_resumes_and_accepts_appends(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with RunStore(path) as legacy:
            legacy.record(_entry(_hex_fp(1)))
        with RunStore(path, shards=2) as migrated:
            migrated.record(_entry(_hex_fp(2)))
        loaded = RunStore(path)
        assert loaded.get(_hex_fp(1)) is not None
        assert loaded.get(_hex_fp(2)) is not None


def _hammer_sharded(path: str, writer: int, appends: int) -> None:
    with RunStore(path) as store:
        for i in range(appends):
            store.record(
                _entry(
                    f"{writer:04x}{i:04x}cafe",
                    meta={"writer": writer, "pad": "x" * 512},
                )
            )


class TestConcurrentShardedWriters:
    def test_parallel_processes_no_torn_lines_any_shard(self, tmp_path):
        root = tmp_path / "runs"
        RunStore(root, shards=4).close()
        writers, appends = 4, 25
        ctx = mp.get_context("spawn")
        procs = [
            ctx.Process(target=_hammer_sharded, args=(str(root), w, appends))
            for w in range(writers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        loaded = RunStore(root)
        assert loaded.skipped_lines == 0
        assert len(loaded) == writers * appends
        for shard in root.glob("shard-*.jsonl"):
            for line in shard.read_text().splitlines():
                json.loads(line)

    def test_reload_picks_up_sibling_appends(self, tmp_path):
        root = tmp_path / "runs"
        mine = RunStore(root, shards=2)
        mine.record(_entry(_hex_fp(1)))
        sibling = RunStore(root)
        sibling.record(_entry(_hex_fp(2)))
        assert mine.get(_hex_fp(2)) is None
        assert mine.reload() == 2
        assert mine.get(_hex_fp(2)) is not None
