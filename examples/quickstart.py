#!/usr/bin/env python
"""Quickstart: map a sparse SNN onto a heterogeneous crossbar pool.

Walks the core API end to end:

1. generate a sparse spiking network,
2. build the Table-II heterogeneous crossbar pool,
3. solve the axon-sharing area ILP (with a greedy warm start),
4. post-optimize routing (SNU) at frozen area,
5. print every paper metric for each step.

Run:  python examples/quickstart.py
"""

from repro.ilp import HighsBackend, HighsOptions
from repro.mapping import (
    AreaModel,
    MappingProblem,
    build_snu_model,
    greedy_first_fit,
)
from repro.mca import heterogeneous_architecture
from repro.snn import network_stats, random_network


def main() -> None:
    # 1. A sparse random SNN (40 neurons, 80 synapses, fan-in <= 8).
    network = random_network(40, 80, seed=42, max_fan_in=8, name="demo")
    stats = network_stats(network)
    print(f"network: {stats.node_count} neurons, {stats.edge_count} synapses, "
          f"max fan-in {stats.max_fan_in}, density {stats.edge_density:.4f}")

    # 2. The paper's Table-II heterogeneous pool (4x4 .. 32x32 multi-macro).
    architecture = heterogeneous_architecture(network.num_neurons)
    print(f"architecture: {architecture}")
    problem = MappingProblem(network, architecture)

    # 3. Area optimization: greedy warm start, then the exact ILP.
    greedy = greedy_first_fit(problem)
    print(f"\ngreedy first-fit : {greedy.summary()}")

    handle = AreaModel(problem)
    solver = HighsBackend(HighsOptions(time_limit=15.0))
    result = solver.solve(handle.model, warm_start=handle.warm_start_from(greedy))
    area_mapping = handle.extract_mapping(result)
    print(f"area ILP ({result.status.value}): {area_mapping.summary()}")

    # 4. SNU: minimize inter-crossbar routes over the frozen crossbar set.
    snu_handle = build_snu_model(problem, area_mapping)
    snu_result = HighsBackend(HighsOptions(time_limit=10.0)).solve(
        snu_handle.model, warm_start=snu_handle.warm_start_from(area_mapping)
    )
    snu_mapping = snu_handle.extract_mapping(snu_result)
    print(f"SNU re-opt       : {snu_mapping.summary()}")

    # 5. The headline numbers.
    saved = 100.0 * (greedy.area() - area_mapping.area()) / greedy.area()
    routes_saved = area_mapping.global_routes() - snu_mapping.global_routes()
    print(f"\narea saved vs greedy : {saved:.1f}%")
    print(f"global routes removed: {routes_saved} "
          f"({area_mapping.global_routes()} -> {snu_mapping.global_routes()}) "
          f"at unchanged area {snu_mapping.area():g}")


if __name__ == "__main__":
    main()
