"""Service-side job registry: states, progress events, cancellation.

A :class:`ServiceJob` is one accepted submission moving through
``queued -> running -> done | error | cancelled``.  Every state change
and per-scenario result is appended to the job's **event log**, which is
simultaneously:

- the NDJSON stream body of ``GET /jobs/<id>/stream`` (replay past
  events, then follow live ones), and
- the audit trail embedded in ``GET /jobs/<id>``.

The registry owns one :class:`threading.Condition`; stream readers block
in :meth:`JobRegistry.events_since` and are woken by whichever worker
thread appends the next event.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from dataclasses import dataclass, field

from ..batch.queue import CancelToken
from .wire import JobSpec

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_ERROR = "error"
JOB_CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = (JOB_DONE, JOB_ERROR, JOB_CANCELLED)


@dataclass
class ServiceJob:
    """One submission's full lifecycle, owned by the registry."""

    id: str
    spec: JobSpec
    token: CancelToken = field(default_factory=CancelToken)
    status: str = JOB_QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    results: list[dict] = field(default_factory=list)
    error: str | None = None
    events: list[dict] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATES

    @property
    def ok(self) -> bool:
        return self.status == JOB_DONE and all(
            result.get("status") == "ok" for result in self.results
        )

    def summary(self) -> dict:
        """The compact view returned by ``GET /jobs``/submission replies."""
        return {
            "id": self.id,
            "status": self.status,
            "tier": self.spec.tier,
            "scenarios": len(self.spec.scenarios),
            "results": len(self.results),
            "submitted_at": self.submitted_at,
            "error": self.error,
        }

    def detail(self) -> dict:
        """The full view returned by ``GET /jobs/<id>``."""
        return {
            **self.summary(),
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "results": list(self.results),
            "events": list(self.events),
        }


class JobRegistry:
    """Thread-safe id -> :class:`ServiceJob` map with an event feed.

    ``max_finished`` bounds how many *terminal* jobs stay queryable: a
    long-lived daemon would otherwise accumulate every result and event
    log forever.  The oldest finished jobs are evicted first; running
    and queued jobs are never evicted.  (Evaluation answers outlive the
    eviction — they live in the shared run store/result cache.)
    """

    def __init__(self, max_finished: int = 512) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self._jobs: dict[str, ServiceJob] = {}
        self._cond = threading.Condition()
        self._counter = itertools.count(1)
        self._max_finished = max_finished

    # ------------------------------------------------------------------
    def create(self, spec: JobSpec) -> ServiceJob:
        """Register a new queued job (ids are unguessable but ordered)."""
        with self._cond:
            job_id = f"job-{next(self._counter):06d}-{secrets.token_hex(3)}"
            job = ServiceJob(id=job_id, spec=spec)
            self._jobs[job_id] = job
            self._append_event(job, {"event": JOB_QUEUED, "id": job_id})
            return job

    def get(self, job_id: str) -> ServiceJob | None:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> list[ServiceJob]:
        """Registered jobs in submission order."""
        with self._cond:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        with self._cond:
            counts: dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            return counts

    # ------------------------------------------------------------------
    def start(self, job: ServiceJob) -> bool:
        """Move a queued job to running; false if a cancel won the race.

        A ``POST /jobs/<id>/cancel`` landing between the worker's pop and
        this call already moved the job to a terminal state — it must not
        be resurrected (its streams saw a terminal event and closed).
        """
        with self._cond:
            if job.finished:
                return False
            job.status = JOB_RUNNING
            job.started_at = time.time()
            self._append_event(job, {"event": JOB_RUNNING})
            return True

    def add_result(self, job: ServiceJob, result: dict) -> None:
        with self._cond:
            job.results.append(result)
            self._append_event(job, {"event": "result", **result})

    def finish(self, job: ServiceJob, status: str, error: str | None = None) -> None:
        """Move a job to a terminal state (idempotent for cancellations)."""
        with self._cond:
            if job.finished:
                return
            job.status = status
            job.error = error
            job.finished_at = time.time()
            event: dict = {"event": status, "results": len(job.results)}
            if error is not None:
                event["error"] = error
            self._append_event(job, event)
            self._evict_finished()

    def cancel(self, job_id: str) -> ServiceJob | None:
        """Flag a job for cancellation; queued jobs terminate right away.

        A *running* job only gets its token set here — the worker
        observes it at the next scenario/solve boundary and moves the job
        to ``cancelled`` itself (with however many results completed).
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.token.cancel()
            if job.status == JOB_QUEUED:
                job.status = JOB_CANCELLED
                job.finished_at = time.time()
                self._append_event(job, {"event": JOB_CANCELLED, "results": 0})
                self._evict_finished()
            return job

    # ------------------------------------------------------------------
    def _evict_finished(self) -> None:
        # Caller holds the condition.  Oldest terminal jobs beyond the
        # retention cap are dropped from the map; live references (e.g.
        # an open stream's job object) keep working off the object.
        finished = [job for job in self._jobs.values() if job.finished]
        for job in finished[: max(0, len(finished) - self._max_finished)]:
            del self._jobs[job.id]

    def _append_event(self, job: ServiceJob, event: dict) -> None:
        # Caller holds the condition.
        job.events.append({"ts": time.time(), **event})
        self._cond.notify_all()

    def events_since(
        self, job: ServiceJob, index: int, timeout: float = 1.0
    ) -> tuple[list[dict], int, bool]:
        """Events after ``index`` for a stream reader.

        Blocks up to ``timeout`` for fresh events; returns
        ``(new_events, next_index, drained)`` where ``drained`` means the
        job is terminal *and* everything has been delivered — the
        stream's end-of-body condition.
        """
        with self._cond:
            if len(job.events) <= index and not job.finished:
                self._cond.wait(timeout=timeout)
            new_events = job.events[index:]
            next_index = index + len(new_events)
            drained = job.finished and next_index == len(job.events)
            return new_events, next_index, drained
