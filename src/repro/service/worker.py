"""The fleet's worker process: one solver loop behind a task queue.

Each worker is a separate OS process spawned by the supervisor (spawn
context, never fork — the daemon carries journal/probe/handler threads
that fork would duplicate mid-lock).  A worker owns its *own*
:class:`~repro.dse.explorer.Explorer` stack — its own handle on the
shared sharded :class:`~repro.dse.store.RunStore`, its own
:class:`~repro.batch.cache.ResultCache` shard directory — so SIGKILLing
it can never corrupt the supervisor's state: the store's per-shard
flock'd appends are crash-safe, the cache publishes entries atomically,
and everything else dies with the process.

Protocol, all over multiprocessing queues (tasks in, messages out)::

    supervisor -> worker : {"job": id, "spec": wire payload,
                            "deadline_at": epoch | None} | None (quit)
    worker -> supervisor : {"type": "ready", ...}
                           {"type": "started", "job": ...}
                           {"type": "heartbeat", "job": ...}   every few s
                           {"type": "result", "job", "results", "cancelled"}
                           {"type": "failed", "job", "error"}
                           {"type": "deadline", "job": ...}  expired unstarted

A task whose ``deadline_at`` has already passed when the worker picks it
up is reported ``deadline`` without touching the mapper; otherwise the
remaining deadline caps the solver's ``time_limit`` so a runaway solve
cannot overshoot the end-to-end budget.

Heartbeats come from a side thread so a long ILP solve still renews the
job's lease; if the *process* dies, the heartbeats stop, the lease
expires, and the supervisor re-queues the job — that is the whole
crash-tolerance story, no worker-side cleanup required.
"""

from __future__ import annotations

import importlib.util
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from .. import trace
from ..batch.cache import ResultCache
from ..batch.engine import BatchMapper
from ..dse.store import TIER_GREEDY, RunStore
from .wire import WireError, parse_job, result_payload

#: Smallest solver budget (seconds) the deadline watchdog will grant; a
#: job with less remaining than this fails fast instead of starting a
#: solve that cannot possibly finish.
MIN_DEADLINE_BUDGET = 0.05


def capped_time_limit(
    spec_limit: float | None,
    default_limit: float | None,
    deadline_at: float | None,
    now: float | None = None,
) -> float | None:
    """The solver ``time_limit`` after the deadline watchdog's cap.

    The effective limit starts as the job's own ``time_limit`` (falling
    back to the worker's default) and is then capped at the seconds
    remaining until ``deadline_at`` — a runaway solve cannot overshoot
    the end-to-end deadline.  Returns ``None`` only when there is no
    limit from any source.
    """
    limit = spec_limit if spec_limit is not None else default_limit
    if deadline_at is None:
        return limit
    now = time.time() if now is None else now
    remaining = max(MIN_DEADLINE_BUDGET, deadline_at - now)
    return remaining if limit is None else min(limit, remaining)


@dataclass(frozen=True)
class FleetConfig:
    """Everything a worker needs to build its solver stack (picklable).

    ``mapper_factory`` is a ``"/path/to/file.py:function"`` reference
    resolved inside the worker process — spawn cannot pickle closures,
    and test helpers (fault injection) live outside the import path.
    The factory is called with ``dict(mapper_kwargs)`` and must return a
    BatchMapper-compatible object.
    """

    store_path: str | None = None
    store_shards: int = 8
    cache_dir: str | None = None
    solver_jobs: int = 1
    portfolio: bool = False
    time_limit: float | None = 10.0
    lease_ttl: float = 15.0
    heartbeat_interval: float = 3.0
    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    drain_timeout: float = 20.0
    mapper_factory: str | None = None
    mapper_kwargs: tuple = field(default_factory=tuple)
    #: Span-journal directory; ``None`` disables tracing in the worker.
    trace_dir: str | None = None
    #: Slow-span watchdog threshold (seconds), forwarded to the runtime.
    trace_slow_span: float | None = None

    def worker_cache_dir(self, worker_id: int) -> str | None:
        """The per-worker result-cache shard (merged by the supervisor)."""
        if self.cache_dir is None:
            return None
        return str(Path(self.cache_dir) / f"worker-{worker_id}")

    def build_mapper(self, worker_id: int):
        """The worker's private engine (factory-injected in chaos tests)."""
        cache_dir = self.worker_cache_dir(worker_id)
        cache = ResultCache(path=cache_dir) if cache_dir is not None else None
        if self.mapper_factory is not None:
            factory = _load_factory(self.mapper_factory)
            return factory(cache=cache, **dict(self.mapper_kwargs))
        return BatchMapper(
            jobs=self.solver_jobs, portfolio=self.portfolio, cache=cache
        )

    def build_store(self) -> RunStore:
        if self.store_path is None:
            return RunStore()
        path = Path(self.store_path)
        if path.is_dir():
            return RunStore(path)  # manifest knows the shard count
        return RunStore(path, shards=self.store_shards)


def _load_factory(reference: str):
    """Resolve ``"/path/to/file.py:function"`` in this process.

    File-path based (not module-path) because chaos helpers live under
    ``tests/``, which is not an importable package in a spawned child.
    """
    path, _, name = reference.partition(":")
    if not name:
        raise ValueError(
            f"mapper_factory must look like 'file.py:function', got {reference!r}"
        )
    spec = importlib.util.spec_from_file_location("repro_fleet_factory", path)
    if spec is None or spec.loader is None:
        raise ValueError(f"cannot load mapper factory from {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return getattr(module, name)


def _task_context(task: dict, spec) -> "trace.TraceContext | None":
    """The trace context a task travels under, if any (never raises).

    The supervisor sends the encoded context both as a task key and
    inside the spec payload; the task key wins (it is what the live
    dispatch saw), the spec copy covers ledger replays.
    """
    encoded = task.get("trace") or spec.trace
    if not encoded:
        return None
    try:
        return trace.parse_context(encoded)
    except ValueError:
        return None


def _heartbeat_message(job_id: str, worker: str, runtime) -> dict:
    message = {"type": "heartbeat", "job": job_id, "worker": worker}
    if runtime is not None:
        progress = runtime.progress_for(job_id)
        if progress is not None:
            message["progress"] = progress
    return message


class _Heartbeat(threading.Thread):
    """Renews one job's lease while the worker thread is deep in a solve."""

    def __init__(self, emit, interval: float) -> None:
        super().__init__(name="repro-worker-heartbeat", daemon=True)
        self._emit = emit
        self._interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(timeout=self._interval):
            self._emit()

    def stop(self) -> None:
        self._stop.set()


def worker_main(
    worker_id: int,
    config: FleetConfig,
    task_queue,
    result_queue,
    cancel_event,
) -> None:
    """A worker process's entire life (also unit-testable in-process).

    ``task_queue``/``result_queue`` are multiprocessing queues (plain
    ``queue.Queue`` works for in-process tests); ``cancel_event`` is a
    shared event the supervisor sets to abort the *current* job at the
    next solve boundary.
    """
    # Lazy construction, inside the child: the solver stack is neither
    # picklable nor fork-safe, so it must be born here.
    from ..dse.explorer import Explorer

    store = config.build_store()
    mapper = config.build_mapper(worker_id)
    explorer = Explorer(store=store, mapper=mapper, time_limit=config.time_limit)
    name = f"worker-{worker_id}"
    runtime = None
    if config.trace_dir is not None:
        runtime = trace.install(
            trace.TraceRuntime(
                config.trace_dir,
                f"{name}-{os.getpid()}",
                slow_span_threshold=config.trace_slow_span,
            )
        )
    result_queue.put({"type": "ready", "worker": name, "pid": os.getpid()})
    try:
        while True:
            task = task_queue.get()
            if task is None:
                return
            job_id = task["job"]
            deadline_at = task.get("deadline_at")
            if deadline_at is not None and deadline_at <= time.time():
                # Claimed but already past its end-to-end deadline: fail
                # fast, mapper never invoked, no solve burned.
                result_queue.put(
                    {"type": "deadline", "job": job_id, "worker": name}
                )
                continue
            result_queue.put({"type": "started", "job": job_id, "worker": name})
            heartbeat = _Heartbeat(
                lambda: result_queue.put(
                    _heartbeat_message(job_id, name, runtime)
                ),
                config.heartbeat_interval,
            )
            heartbeat.start()
            try:
                spec = parse_job(task["spec"])
                context = _task_context(task, spec)
                with trace.activate(context, job_id):
                    with trace.span(
                        "worker-solve", job=job_id, tier=spec.tier, worker=name
                    ):
                        # Siblings may have finished scenarios since this
                        # store handle last looked; the reload keeps
                        # repeats zero-solve.
                        store.reload()
                        if spec.tier == TIER_GREEDY:
                            results = explorer.evaluate_greedy(
                                list(spec.scenarios)
                            )
                        else:
                            results = explorer.evaluate_ilp(
                                list(spec.scenarios),
                                time_limit=capped_time_limit(
                                    spec.time_limit,
                                    config.time_limit,
                                    deadline_at,
                                ),
                                should_cancel=cancel_event.is_set,
                            )
                result_queue.put(
                    {
                        "type": "result",
                        "job": job_id,
                        "worker": name,
                        "results": [result_payload(result) for result in results],
                        "cancelled": bool(cancel_event.is_set()),
                    }
                )
            except (WireError, KeyError, TypeError) as exc:
                result_queue.put(
                    {
                        "type": "failed",
                        "job": job_id,
                        "worker": name,
                        "error": f"unrunnable task: {exc}",
                    }
                )
            except Exception as exc:
                result_queue.put(
                    {
                        "type": "failed",
                        "job": job_id,
                        "worker": name,
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(limit=8),
                    }
                )
            finally:
                heartbeat.stop()
                if runtime is not None:
                    # Flushed per task so a SIGKILL between tasks loses
                    # nothing; the lease re-queue covers mid-task kills.
                    runtime.flush()
                    runtime.clear_progress(job_id)
    finally:
        store.close()
        if runtime is not None:
            runtime.close()
