"""Fairness, deadlines and overload shedding, proved deterministically.

The starvation/fairness story has two halves — the in-process
``JobQueue`` (covered in ``tests/batch/test_queue.py`` with an injected
clock) and the fleet's ``JobLedger.claim`` — plus the service-level
behavior that ties them to clients: a flooding client must not starve a
quiet one, ``batch`` work must always eventually run, an expired
deadline must terminate a job without a single mapper invocation, and
overload must shed the *least* important queued work first.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path

import pytest

from repro.batch.queue import JobQueue
from repro.dse.scenario import (
    ArchitectureSpec,
    FormulationSpec,
    Scenario,
    WorkloadSpec,
)
from repro.service.daemon import MappingService
from repro.service.jobs import JOB_DEADLINE, JOB_DONE, JOB_SHED
from repro.service.ledger import LEASE_FINISHED, JobLedger
from repro.service.wire import JobSpec, parse_job
from repro.service.worker import (
    MIN_DEADLINE_BUDGET,
    FleetConfig,
    capped_time_limit,
    worker_main,
)

pytestmark = pytest.mark.service

CHAOS = str(Path(__file__).resolve().parent / "chaos.py")


def _scenario(name_seed: int = 12) -> Scenario:
    return Scenario(
        architecture=ArchitectureSpec(kind="homogeneous", dimension=name_seed),
        workload=WorkloadSpec(network="C", scale=0.1, profile="uniform"),
        formulation=FormulationSpec(stages=("area",)),
    )


def _spec(**kwargs) -> JobSpec:
    return JobSpec(scenarios=(_scenario(),), **kwargs)


# ----------------------------------------------------------------------
class _StubStore:
    path = None

    def __len__(self) -> int:
        return 0

    def close(self) -> None:
        pass

    def reload(self) -> None:
        pass


class _StubMapper:
    metrics = None


class _StubResult:
    """Just enough of ScenarioResult for ``result_payload``."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self.fingerprint = "stub"
        self.tier = "ilp"
        self.status = "ok"
        self.objectives = None
        self.assignment = None
        self.solves = 1
        self.from_store = False
        self.ok = True
        self.wall_time = 0.0
        self.error = None


class StubExplorer:
    """A solver stack whose 'solves' are sleeps — fast, deterministic."""

    def __init__(self, delay: float = 0.0, time_limit: float = 5.0) -> None:
        self.delay = delay
        self.time_limit = time_limit
        self.mapper = _StubMapper()
        self.cache = None
        self.store = _StubStore()
        self.calls = 0
        self.limits: list[float | None] = []
        self._lock = threading.Lock()

    def evaluate_greedy(self, scenarios, meta=None):
        return [_StubResult(s) for s in scenarios]

    def evaluate_ilp(self, scenarios, time_limit=None, meta=None, should_cancel=None):
        with self._lock:
            self.calls += 1
            self.limits.append(time_limit)
        if self.delay:
            time.sleep(self.delay)
        return [_StubResult(s) for s in scenarios]


def _wait_status(service: MappingService, job_id: str, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = service.registry.get(job_id)
        if job is not None and job.finished:
            return job
        time.sleep(0.01)
    pytest.fail(f"job {job_id} still unfinished after {timeout}s")


# ----------------------------------------------------------------------
class TestServiceFairness:
    def test_flooding_client_does_not_starve_the_quiet_one(self):
        """One client floods ``batch`` jobs; the quiet client's ``normal``
        jobs jump the backlog via priority lanes, and every batch job
        still completes (no starvation either way)."""
        explorer = StubExplorer(delay=0.05)
        service = MappingService(explorer, workers=2)
        service.start()
        try:
            flood = [
                service.submit(
                    _spec(priority="batch", client="flooder", time_limit=1.0)
                )
                for _ in range(12)
            ]
            quiet_submitted = time.monotonic()
            quiet = [
                service.submit(_spec(client="quiet", time_limit=1.0))
                for _ in range(3)
            ]
            quiet_waits = []
            for job in quiet:
                _wait_status(service, job.id)
                quiet_waits.append(time.monotonic() - quiet_submitted)
            # 12 batch jobs * 50ms over 2 workers is ~300ms of backlog;
            # lanes let the quiet normal jobs overtake nearly all of it.
            assert max(quiet_waits) < 0.45
            for job in flood:  # aged batch work still completes
                assert _wait_status(service, job.id).status == JOB_DONE
            snapshot = service.metrics.snapshot()
            assert snapshot["latency"]["queue_wait_normal"]["count"] == 3
            assert snapshot["latency"]["queue_wait_batch"]["count"] == 12
            admission = service.admission.snapshot()
            assert admission["clients"]["flooder"]["admitted"] == 12
            assert admission["clients"]["quiet"]["admitted"] == 3
            assert admission["in_flight"] == 0  # all released on finish
        finally:
            service.stop()

    def test_priority_and_client_ride_the_job_summary(self):
        service = MappingService(StubExplorer())
        job = service.submit(_spec(priority="high", client="team-a"))
        summary = job.summary()
        assert summary["priority"] == "high"
        assert summary["client"] == "team-a"
        service.stop()


# ----------------------------------------------------------------------
class TestDeadlinePropagation:
    def test_expired_job_terminates_without_invoking_the_mapper(self):
        """A job whose deadline lapses while queued finishes as
        ``deadline`` with zero evaluate calls charged to it."""
        explorer = StubExplorer(delay=0.4)
        service = MappingService(explorer, workers=1)
        service.start()
        try:
            slow = service.submit(_spec(time_limit=1.0))
            doomed = service.submit(_spec(time_limit=1.0, deadline_ms=100))
            assert _wait_status(service, slow.id).status == JOB_DONE
            finished = _wait_status(service, doomed.id)
            assert finished.status == JOB_DEADLINE
            assert "deadline" in (finished.error or "")
            assert explorer.calls == 1  # the slow job; never the doomed one
            counters = service.metrics.snapshot()["counters"]
            assert counters["jobs_deadline"] == 1
            assert counters["jobs_started"] == 1
        finally:
            service.stop()

    def test_remaining_deadline_caps_the_solver_budget(self):
        explorer = StubExplorer(time_limit=5.0)
        service = MappingService(explorer, workers=1)
        service.start()
        try:
            job = service.submit(_spec(deadline_ms=2000))
            assert _wait_status(service, job.id).status == JOB_DONE
            assert len(explorer.limits) == 1
            # Capped at the ~2s remaining, not the explorer's 5s default.
            assert explorer.limits[0] is not None
            assert MIN_DEADLINE_BUDGET <= explorer.limits[0] <= 2.0
        finally:
            service.stop()

    def test_capped_time_limit_arithmetic(self):
        assert capped_time_limit(None, None, None) is None
        assert capped_time_limit(3.0, 10.0, None) == 3.0
        assert capped_time_limit(None, 10.0, None) == 10.0
        assert capped_time_limit(10.0, None, 105.0, now=100.0) == 5.0
        assert capped_time_limit(2.0, None, 105.0, now=100.0) == 2.0
        assert capped_time_limit(None, None, 103.0, now=100.0) == 3.0
        # A blown deadline still grants the floor, never zero/negative.
        assert capped_time_limit(10.0, None, 90.0, now=100.0) == (
            MIN_DEADLINE_BUDGET
        )

    def test_worker_declines_expired_task_without_mapper(self, tmp_path):
        """In-process ``worker_main``: a claimed-but-expired task emits a
        ``deadline`` message and the chaos counter proves zero
        ``map_all`` invocations."""
        config = FleetConfig(
            mapper_factory=f"{CHAOS}:counting_mapper",
            mapper_kwargs=(
                ("attempts_dir", str(tmp_path)),
                ("key", "deadline-job"),
            ),
        )
        tasks: queue.Queue = queue.Queue()
        results: queue.Queue = queue.Queue()
        tasks.put(
            {
                "job": "job-expired",
                "spec": _spec().payload(),
                "deadline_at": time.time() - 5.0,
            }
        )
        tasks.put(None)
        worker_main(0, config, tasks, results, threading.Event())

        messages = []
        while not results.empty():
            messages.append(results.get_nowait())
        kinds = [message["type"] for message in messages]
        assert "deadline" in kinds
        assert "started" not in kinds  # declined before any work
        assert "result" not in kinds
        # The counting mapper persists every map_all call; no file means
        # it was never constructed into a call at all.
        assert not (tmp_path / "deadline-job.attempts").exists()


# ----------------------------------------------------------------------
class TestLedgerPriorityClaims:
    def test_claim_order_is_effective_priority(self):
        ledger = JobLedger(aging_interval=30.0)
        batch = ledger.enqueue("batch-job", {"spec": 1}, priority="batch")
        high = ledger.enqueue("high-job", {"spec": 2}, priority="high")
        batch.enqueued_at = 100.0
        high.enqueued_at = 100.0
        now = 110.0  # batch: 2 - 10/30 = 1.67 > high: 0 - 10/30 = -0.33
        assert ledger.claim("w", now=now).id == "high-job"

    def test_starved_batch_ages_past_fresh_high(self):
        ledger = JobLedger(aging_interval=30.0)
        batch = ledger.enqueue("starved", {"spec": 1}, priority="batch")
        high = ledger.enqueue("fresh", {"spec": 2}, priority="high")
        batch.enqueued_at = 100.0
        high.enqueued_at = 190.0
        now = 200.0  # batch: 2 - 100/30 = -1.3; high: 0 - 10/30 = -0.3
        assert ledger.claim("w", now=now).id == "starved"
        assert ledger.claim("w", now=now).id == "fresh"

    def test_deadline_expired_pending_is_never_claimed(self):
        ledger = JobLedger()
        ledger.enqueue("expired", {"spec": 1}, deadline_at=150.0)
        ledger.enqueue("alive", {"spec": 2}, deadline_at=10_000.0)
        lease = ledger.claim("w", now=200.0)
        assert lease.id == "alive"
        assert ledger.claim("w", now=200.0) is None  # expired never leased

    def test_deadline_sweep_finishes_without_attempt_charge(self):
        ledger = JobLedger()
        ledger.enqueue("expired", {"spec": 1}, deadline_at=150.0)
        swept = ledger.deadline_expired(now=200.0)
        assert [job.id for job in swept] == ["expired"]
        job = ledger.get("expired")
        assert job.state == LEASE_FINISHED
        assert job.outcome == "deadline"
        assert job.attempts == 0  # zero retry budget charged
        assert ledger.counts()["deadline_expired"] == 1
        assert ledger.deadline_expired(now=300.0) == []  # idempotent

    def test_replay_preserves_priority_and_deadline(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = JobLedger(path)
        first.enqueue("lane-job", {"spec": 1}, priority="batch", deadline_at=500.0)
        first.enqueue("plain-job", {"spec": 2})
        first.close()

        replayed = JobLedger(path)
        lane_job = replayed.get("lane-job")
        assert lane_job.priority == "batch"
        assert lane_job.deadline_at == 500.0
        plain = replayed.get("plain-job")
        assert plain.priority == "normal"
        assert plain.deadline_at is None
        # Lane ordering survives the restart: the batch job is passed
        # over while fresh, aged in front once starved.
        lane_job.enqueued_at = 100.0
        plain.enqueued_at = 100.0
        assert replayed.claim("w", now=101.0).id == "plain-job"
        replayed.close()

    def test_lane_snapshot_counts_pending_by_lane(self):
        ledger = JobLedger()
        ledger.enqueue("a", {"s": 1}, priority="batch")
        ledger.enqueue("b", {"s": 2}, priority="batch")
        ledger.enqueue("c", {"s": 3}, priority="high")
        ledger.claim("w")  # leases the high job
        lanes = ledger.lane_snapshot()
        assert lanes["batch"]["depth"] == 2
        assert lanes["high"]["depth"] == 0
        assert lanes["normal"]["depth"] == 0
        assert lanes["batch"]["oldest_wait"] is not None


# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestOverloadShedding:
    def test_sheds_lowest_effective_priority_half(self):
        """Queue mode: once the oldest job waits past ``shed_after``, the
        worst-priority half of the backlog sheds with a resubmittable
        spec; high-priority work survives."""
        clock = FakeClock()
        service = MappingService(StubExplorer(), shed_after=10.0)
        service.queue = JobQueue(aging_interval=30.0, clock=clock)
        high = service.submit(_spec(priority="high", client="a"))
        normal = service.submit(_spec(client="a"))
        doomed = [service.submit(_spec(priority="batch", client="b")) for _ in range(2)]

        assert service.shed_overload() == 0  # nothing old enough yet
        clock.advance(11.0)
        assert service.shed_overload() == 2  # half of 4, batch lane first

        for job in doomed:
            assert job.status == JOB_SHED
            event = job.events[-1]
            assert event["event"] == "shed"
            respec = parse_job(event["spec"])  # resubmittable as-is
            assert respec.priority == "batch"
        assert high.status != JOB_SHED
        assert normal.status != JOB_SHED
        assert service.metrics.counter("jobs_shed") == 2
        # Shed jobs release their client's in-flight quota.
        assert service.admission.in_flight("b") == 0
        service.stop()

    def test_ledger_mode_sheds_pending_jobs(self):
        service = MappingService(StubExplorer(), fleet=1, shed_after=10.0)
        kept = service.submit(_spec(priority="high", client="a"))
        doomed = service.submit(_spec(priority="batch", client="b"))
        for lease in service.ledger.jobs():
            lease.enqueued_at = 100.0
        assert service.shed_overload(now=105.0) == 0
        assert service.shed_overload(now=120.0) == 1
        assert doomed.status == JOB_SHED
        assert parse_job(doomed.events[-1]["spec"])  # resubmittable
        assert kept.status != JOB_SHED
        assert service.ledger.get(doomed.id).outcome == JOB_SHED
        assert service.ledger.get(kept.id).state != LEASE_FINISHED
        service.stop()

    def test_supervisor_sweep_mirrors_deadline_into_registry(self):
        service = MappingService(StubExplorer(), fleet=1)
        job = service.submit(_spec(deadline_ms=1))
        time.sleep(0.05)  # let the 1ms deadline lapse
        service.supervisor._sweep_deadlines()
        assert job.status == JOB_DEADLINE
        lease = service.ledger.get(job.id)
        assert lease.outcome == "deadline"
        assert lease.attempts == 0
        service.stop()
