"""PGO substrate: synthetic SmartPixel-like dataset, the 1%/99% profile
split, spike-profile collection and mapped-packet evaluation."""

from .profiler import PacketEvaluation, collect_profile, evaluate_packets
from .workloads import hotspot_frames, noise_frames, stroke_frames
from .smartpixel import (
    PixelSample,
    SmartPixelConfig,
    generate_dataset,
    split_dataset,
)

__all__ = [
    "PacketEvaluation",
    "PixelSample",
    "SmartPixelConfig",
    "collect_profile",
    "evaluate_packets",
    "generate_dataset",
    "hotspot_frames",
    "noise_frames",
    "stroke_frames",
    "split_dataset",
]
