"""Spectral-clustering baseline (TraNNsformer [23] flavour).

Clusters the SNN by the low eigenvectors of the symmetrized graph
Laplacian, then repairs clusters to crossbar capacities and assigns them
to slots.  Like the other approximate baselines it is homogeneous-minded:
clusters target a single crossbar dimension.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.vq import kmeans2
from scipy.linalg import eigh

from .problem import MappingProblem
from .solution import Mapping


def _spectral_embedding(problem: MappingProblem, dims: int) -> np.ndarray:
    """Rows = neurons, columns = the ``dims`` smallest nontrivial
    eigenvectors of the normalized symmetrized Laplacian."""
    n = problem.num_neurons
    adj = np.zeros((n, n))
    for k, i in problem.edges():
        adj[k, i] = 1.0
        adj[i, k] = 1.0
    degree = adj.sum(axis=1)
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(np.maximum(degree, 1e-12)), 0.0)
    lap = np.eye(n) - (inv_sqrt[:, None] * adj * inv_sqrt[None, :])
    # Dense eigh is fine at mapping scales (n <= a few hundred).
    _, vectors = eigh(lap)
    return vectors[:, 1 : dims + 1]


def spectral_mapping(
    problem: MappingProblem,
    num_clusters: int | None = None,
    seed: int = 0,
) -> Mapping:
    """Cluster spectrally, repair to capacities, assign clusters to slots.

    ``num_clusters`` defaults to the minimum crossbar count by output
    capacity of the architecture's largest slot type.
    """
    arch = problem.architecture
    biggest = max(arch.types(), key=lambda t: t.outputs)
    if num_clusters is None:
        num_clusters = max(1, int(np.ceil(problem.num_neurons / biggest.outputs)))
    num_clusters = min(num_clusters, problem.num_neurons)

    dims = min(max(2, num_clusters), problem.num_neurons - 1)
    embedding = _spectral_embedding(problem, dims)
    _, labels = kmeans2(embedding, num_clusters, minit="++", seed=seed)

    clusters: list[set[int]] = [set() for _ in range(num_clusters)]
    for neuron, label in enumerate(labels):
        clusters[int(label)].add(neuron)
    clusters = [c for c in clusters if c]

    # Capacity repair: split any cluster exceeding the biggest slot's
    # output or input dimension (axon-shared demand).
    repaired: list[set[int]] = []
    for cluster in clusters:
        repaired.extend(_split_to_fit(problem, cluster, biggest.outputs, biggest.inputs))

    # Assign clusters to concrete slots, cheapest fitting slot first.
    assignment: dict[int, int] = {}
    used: set[int] = set()
    for cluster in sorted(repaired, key=lambda c: -len(c)):
        demand_in = problem.axon_demand(cluster)
        candidates = [
            s for s in arch.slots
            if s.index not in used
            and s.outputs >= len(cluster)
            and s.inputs >= demand_in
        ]
        if not candidates:
            raise RuntimeError(
                f"spectral mapping: no free slot fits a cluster of "
                f"{len(cluster)} neurons / {demand_in} axons"
            )
        best = min(candidates, key=lambda s: (s.area, s.index))
        used.add(best.index)
        for neuron in cluster:
            assignment[neuron] = best.index

    mapping = Mapping(problem, assignment)
    issues = mapping.validate()
    if issues:  # pragma: no cover - clusters are capacity-repaired
        raise AssertionError(f"spectral mapping invalid: {issues}")
    return mapping


def _split_to_fit(
    problem: MappingProblem, cluster: set[int], max_outputs: int, max_inputs: int
) -> list[set[int]]:
    """Greedily split a cluster until both dimensions fit."""
    pieces: list[set[int]] = []
    remaining = sorted(cluster)
    current: set[int] = set()
    for neuron in remaining:
        candidate = current | {neuron}
        if (
            len(candidate) > max_outputs
            or problem.axon_demand(candidate) > max_inputs
        ):
            if current:
                pieces.append(current)
            current = {neuron}
        else:
            current = candidate
    if current:
        pieces.append(current)
    return pieces
