"""The staged optimization pipeline used by the paper's evaluation.

Section V's experiments compose the formulations in a fixed order:

1. **area** — axon-sharing area optimization (warm-started by greedy
   first-fit);
2. **snu** — routes minimized over the area solution's frozen crossbars;
3. **pgo** — packets minimized over the same frozen crossbars using a
   spike profile ("compared to the best-area-then-route optimized
   solutions").

:class:`MappingPipeline` runs any prefix of that sequence with per-stage
solver budgets, recording the mapping, metrics and solver effort of every
stage.

Warm starts flow through each stage index-based: the previous stage's
mapping becomes a dense variable vector (``warm_start_from``), the
backend checks and seeds it against the model's cached matrix form, and
the solved vector comes back as :attr:`SolveResult.x` for dense mapping
extraction — no name-keyed dict hops anywhere on the stage hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping as MappingT, Protocol

from ..ilp.highs_backend import HighsBackend, HighsOptions
from ..ilp.result import SolveResult
from .axon_sharing import AreaModel, FormulationOptions
from .greedy import greedy_first_fit
from .metrics import MappingMetrics, evaluate_mapping
from .pgo import SpikeProfile, build_pgo_model
from .precision import PrecisionAreaModel, PrecisionSpec, validate_sliced
from .problem import MappingProblem
from .snu import RouteModelOptions, RouteObjective, build_snu_model
from .solution import Mapping

STAGES = ("area", "snu", "pgo")


class SolverBackend(Protocol):
    """Anything that can solve a lowered model (HiGHS, B&B, a portfolio)."""

    def solve(
        self,
        model,
        warm_start: dict[str, float] | None = None,
        keep_values: bool = True,
    ) -> SolveResult: ...


#: Maps a per-stage wall-time budget to a backend instance.  The default
#: factory builds a :class:`HighsBackend`; the batch engine substitutes a
#: solver-portfolio factory here.
SolverFactory = Callable[[float | None], SolverBackend]


@dataclass
class StageRecord:
    """One pipeline stage's outcome."""

    name: str
    mapping: Mapping
    metrics: MappingMetrics
    solve_result: SolveResult | None = None

    @property
    def det_time(self) -> float:
        return self.solve_result.det_time if self.solve_result else 0.0


@dataclass
class PipelineResult:
    """Every stage record, keyed by stage name, in execution order."""

    stages: dict[str, StageRecord] = field(default_factory=dict)

    def final(self) -> StageRecord:
        if not self.stages:
            raise ValueError("pipeline produced no stages")
        return next(reversed(self.stages.values()))

    def total_det_time(self) -> float:
        return sum(record.det_time for record in self.stages.values())


class MappingPipeline:
    """area -> snu -> pgo with per-stage solver budgets.

    ``solver`` swaps the per-stage backend: it receives the stage's wall
    budget and returns any :class:`SolverBackend` (the default is plain
    HiGHS; the batch engine injects a racing portfolio here).

    ``precision`` swaps the area stage's model for the bit-slicing-aware
    :class:`~repro.mapping.precision.PrecisionAreaModel`.  The later route
    stages keep the enabled-crossbar set frozen (so area accounting is
    preserved) but re-place neurons with unweighted output rows — combine
    precision with route stages only when that slack is acceptable.
    """

    def __init__(
        self,
        problem: MappingProblem,
        area_time_limit: float | None = 30.0,
        route_time_limit: float | None = 30.0,
        formulation: FormulationOptions | None = None,
        solver: SolverFactory | None = None,
        precision: PrecisionSpec | None = None,
    ) -> None:
        self.problem = problem
        self.area_time_limit = area_time_limit
        self.route_time_limit = route_time_limit
        self.formulation = formulation or FormulationOptions()
        self.precision = precision
        self.solver: SolverFactory = solver or (
            lambda limit: HighsBackend(HighsOptions(time_limit=limit))
        )

    def run(
        self,
        stages: tuple[str, ...] = STAGES,
        profile: SpikeProfile | MappingT[int, int] | None = None,
        initial: Mapping | None = None,
    ) -> PipelineResult:
        """Execute the requested stage prefix.

        Stages must be a prefix-ordered subset of ("area", "snu", "pgo");
        "pgo" requires ``profile``.
        """
        unknown = [s for s in stages if s not in STAGES]
        if unknown:
            raise ValueError(f"unknown stages {unknown}; valid: {STAGES}")
        order = [s for s in STAGES if s in stages]
        if "pgo" in order and profile is None:
            raise ValueError("the pgo stage requires a spike profile")

        result = PipelineResult()
        current = initial if initial is not None else greedy_first_fit(self.problem)

        if "area" in order:
            current, solve = self._run_area(current)
            result.stages["area"] = StageRecord(
                "area", current, self._metrics(current, profile), solve
            )
        if "snu" in order:
            current, solve = self._run_snu(current)
            result.stages["snu"] = StageRecord(
                "snu", current, self._metrics(current, profile), solve
            )
        if "pgo" in order:
            assert profile is not None
            current, solve = self._run_pgo(current, profile)
            result.stages["pgo"] = StageRecord(
                "pgo", current, self._metrics(current, profile), solve
            )
        if not result.stages:
            result.stages["greedy"] = StageRecord(
                "greedy", current, self._metrics(current, profile), None
            )
        return result

    # ------------------------------------------------------------------
    def _metrics(self, mapping, profile) -> MappingMetrics:
        counts = None
        if profile is not None:
            counts = profile.counts if isinstance(profile, SpikeProfile) else profile
        return evaluate_mapping(mapping, counts)

    def _run_area(self, warm: Mapping) -> tuple[Mapping, SolveResult]:
        build_entry = time.perf_counter()
        if self.precision is not None:
            handle = PrecisionAreaModel(
                self.problem, self.precision, self.formulation
            )
            # A greedy/carried-over warm start is unaware of bit-slicing and
            # may violate the sliced output rows; the backends reject
            # infeasible warm starts outright, so only seed ones that hold.
            violations = validate_sliced(warm, handle.slices)
            warm_vec = handle.warm_start_from(warm) if not violations else None
        else:
            handle = AreaModel(self.problem, self.formulation)
            warm_vec = handle.warm_start_from(warm)
        build_wall = time.perf_counter() - build_entry
        backend = self.solver(self.area_time_limit)
        solve = backend.solve(handle.model, warm_start=warm_vec)
        solve.phases = (("build", build_wall),) + tuple(solve.phases)
        return handle.extract_mapping(solve), solve

    def _route_options(self, objective: RouteObjective) -> RouteModelOptions:
        """Route-stage options inheriting the formulation's symmetry level.

        Only an explicit ``"lex"`` propagates (``"order"`` historically
        applied to the area model alone); warm starts stay valid because
        the route builders canonicalize them to the model's level.
        """
        return RouteModelOptions(
            objective=objective, symmetry=self.formulation.route_symmetry()
        )

    def _run_snu(self, base: Mapping) -> tuple[Mapping, SolveResult]:
        build_entry = time.perf_counter()
        handle = build_snu_model(
            self.problem,
            base,
            RouteObjective.GLOBAL,
            options=self._route_options(RouteObjective.GLOBAL),
        )
        build_wall = time.perf_counter() - build_entry
        backend = self.solver(self.route_time_limit)
        solve = backend.solve(handle.model, warm_start=handle.warm_start_from(base))
        solve.phases = (("build", build_wall),) + tuple(solve.phases)
        mapping = handle.extract_mapping(solve)
        # The SNU stage must never regress area (paper Figs. 5/6 premise).
        assert mapping.area() <= base.area() + 1e-9
        return mapping, solve

    def _run_pgo(
        self, base: Mapping, profile: SpikeProfile | MappingT[int, int]
    ) -> tuple[Mapping, SolveResult]:
        build_entry = time.perf_counter()
        handle = build_pgo_model(
            self.problem,
            base,
            profile,
            options=self._route_options(RouteObjective.GLOBAL),
        )
        build_wall = time.perf_counter() - build_entry
        backend = self.solver(self.route_time_limit)
        solve = backend.solve(handle.model, warm_start=handle.warm_start_from(base))
        solve.phases = (("build", build_wall),) + tuple(solve.phases)
        mapping = handle.extract_mapping(solve)
        assert mapping.area() <= base.area() + 1e-9
        return mapping, solve
