"""Trace identity: ids, contexts and the wire/header encoding.

A *trace* is one job's end-to-end story; a *span* is one timed hop of
it.  The context that travels between processes is just the pair
``(trace_id, span_id)`` — the id of the trace and the span that any
work done under the context should parent to.  It crosses boundaries as
the string ``<trace_id>:<span_id>`` (or a bare ``<trace_id>``): the
``X-Repro-Trace`` HTTP header, the ``trace`` key of a wire-format job
submission, and the fleet task protocol all carry exactly this form, so
a journal replay or a daemon restart reconstructs the same context
bit-for-bit.
"""

from __future__ import annotations

import re
import secrets
from dataclasses import dataclass

#: The HTTP header a client uses to supply (and the daemon echoes back)
#: a trace context on ``POST /jobs``.
TRACE_HEADER = "X-Repro-Trace"

#: Hex ids: 16 chars for traces, 8 for spans (sizes are conventions,
#: parsing accepts 8-32 so foreign tooling can interoperate).
_ID_PATTERN = re.compile(r"^[0-9a-f]{8,32}$")


def new_trace_id() -> str:
    return secrets.token_hex(8)


def new_span_id() -> str:
    return secrets.token_hex(4)


@dataclass(frozen=True)
class TraceContext:
    """The propagated pair: which trace, and which span to parent to."""

    trace_id: str
    span_id: str

    def child(self) -> "TraceContext":
        """A fresh context for a new span under this one."""
        return TraceContext(self.trace_id, new_span_id())

    def encode(self) -> str:
        """The wire/header form (``parse_context`` round-trips it)."""
        return f"{self.trace_id}:{self.span_id}"


def mint_context() -> TraceContext:
    """A brand-new root context (trace accepted with no inbound header)."""
    return TraceContext(new_trace_id(), new_span_id())


def valid_encoded(value: object) -> bool:
    """Whether ``value`` is a well-formed encoded context (or bare id)."""
    if not isinstance(value, str):
        return False
    head, sep, tail = value.partition(":")
    if not _ID_PATTERN.match(head):
        return False
    if not sep:
        return True
    return _ID_PATTERN.match(tail) is not None


def parse_context(value: str) -> TraceContext:
    """Decode ``trace_id[:span_id]``; a bare trace id mints the span.

    Raises :class:`ValueError` on anything malformed — callers at trust
    boundaries (the HTTP handler, the wire parser) turn that into a 400.
    """
    if not valid_encoded(value):
        raise ValueError(
            "trace context must be 8-32 lowercase hex chars, optionally "
            f"':'-joined with a span id of the same shape, got {value!r}"
        )
    trace_id, _, span_id = value.partition(":")
    return TraceContext(trace_id, span_id or new_span_id())
