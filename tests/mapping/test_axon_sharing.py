"""Tests for the core area ILP (constraints 3-7, objective 8).

Includes a brute-force cross-check: on tiny instances the ILP optimum must
equal exhaustive enumeration over all placements, and the Fig.-1 motif
must show axon sharing costing one input line, not two.
"""

import itertools

import pytest

from repro.ilp.bnb_backend import BnBBackend
from repro.ilp.highs_backend import HighsBackend
from repro.ilp.result import SolveStatus
from repro.mapping.axon_sharing import (
    AreaModel,
    FormulationOptions,
    canonicalize_mapping,
)
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.problem import MappingProblem
from repro.mapping.solution import Mapping
from repro.mca.architecture import custom_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network
from repro.snn.network import Network


def brute_force_min_area(problem: MappingProblem) -> float:
    """Exhaustive minimum area over all valid placements (tiny inputs)."""
    neurons = problem.network.neuron_ids()
    best = float("inf")
    for combo in itertools.product(range(problem.num_slots), repeat=len(neurons)):
        mapping = Mapping(problem, dict(zip(neurons, combo)))
        if mapping.is_valid():
            best = min(best, mapping.area())
    return best


def fig1_problem():
    """The paper's Fig. 1 motif scaled to force the sharing decision.

    Source 0 feeds consumers 1..3; a 4x4 crossbar can host all three
    consumers plus the source only because they share 0's word-line.
    """
    net = Network("fig1")
    for i in range(4):
        net.add_neuron(i, is_input=(i == 0))
    for consumer in (1, 2, 3):
        net.add_synapse(0, consumer)
    arch = custom_architecture([(CrossbarType(2, 4), 2)])
    return MappingProblem(net, arch)


class TestAreaModelStructure:
    def test_variable_counts(self, tiny_problem):
        handle = AreaModel(tiny_problem)
        n = tiny_problem.num_neurons
        j = tiny_problem.num_slots
        sources = len(tiny_problem.sources())
        assert len(handle.x) == n * j
        assert len(handle.s) == sources * j
        assert len(handle.y) == j

    def test_symmetry_breaking_rows_present(self, tiny_problem):
        with_sym = AreaModel(tiny_problem, FormulationOptions(symmetry_breaking=True))
        without = AreaModel(tiny_problem, FormulationOptions(symmetry_breaking=False))
        assert with_sym.model.num_constraints > without.model.num_constraints


class TestAreaOptimality:
    def test_matches_brute_force(self):
        net = random_network(5, 8, seed=3, max_fan_in=3)
        arch = custom_architecture(
            [(CrossbarType(4, 4), 2), (CrossbarType(8, 8), 1)]
        )
        problem = MappingProblem(net, arch)
        handle = AreaModel(problem)
        result = HighsBackend().solve(handle.model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(brute_force_min_area(problem))

    def test_backends_agree(self):
        net = random_network(5, 8, seed=4, max_fan_in=3)
        arch = custom_architecture([(CrossbarType(4, 4), 3)])
        problem = MappingProblem(net, arch)
        handle = AreaModel(problem)
        highs = HighsBackend().solve(handle.model)
        bnb = BnBBackend().solve(handle.model)
        assert highs.objective == pytest.approx(bnb.objective)

    def test_fig1_axon_sharing_fits_one_crossbar(self):
        problem = fig1_problem()
        handle = AreaModel(problem)
        result = HighsBackend().solve(handle.model)
        assert result.status is SolveStatus.OPTIMAL
        mapping = handle.extract_mapping(result)
        # All four neurons share slot 0: axon 0 occupies ONE input line.
        assert len(mapping.enabled_slots()) == 1
        assert mapping.axon_inputs(mapping.enabled_slots()[0]) == {0}

    def test_extracted_mapping_always_valid(self, tiny_het_problem):
        handle = AreaModel(tiny_het_problem)
        result = HighsBackend().solve(handle.model)
        mapping = handle.extract_mapping(result)
        assert mapping.is_valid()
        assert mapping.area() == pytest.approx(result.objective)

    def test_aggregated_sharing_same_optimum(self, tiny_problem):
        tight = AreaModel(tiny_problem, FormulationOptions(disaggregate_sharing=True))
        loose = AreaModel(tiny_problem, FormulationOptions(disaggregate_sharing=False))
        r1 = HighsBackend().solve(tight.model)
        r2 = HighsBackend().solve(loose.model)
        assert r1.objective == pytest.approx(r2.objective)

    def test_without_upper_link_same_optimum(self, tiny_problem):
        with_link = AreaModel(tiny_problem, FormulationOptions(include_upper_link=True))
        without = AreaModel(tiny_problem, FormulationOptions(include_upper_link=False))
        r1 = HighsBackend().solve(with_link.model)
        r2 = HighsBackend().solve(without.model)
        assert r1.objective == pytest.approx(r2.objective)

    def test_symmetry_breaking_preserves_optimum(self, tiny_het_problem):
        a = AreaModel(tiny_het_problem, FormulationOptions(symmetry_breaking=True))
        b = AreaModel(tiny_het_problem, FormulationOptions(symmetry_breaking=False))
        r1 = HighsBackend().solve(a.model)
        r2 = HighsBackend().solve(b.model)
        assert r1.objective == pytest.approx(r2.objective)


class TestWarmStart:
    def test_warm_start_is_feasible(self, tiny_het_problem):
        handle = AreaModel(tiny_het_problem)
        warm = handle.warm_start_from(greedy_first_fit(tiny_het_problem))
        assert handle.model.check_feasible(warm) == []

    def test_warm_start_bounds_solution(self, tiny_het_problem):
        handle = AreaModel(tiny_het_problem)
        greedy = greedy_first_fit(tiny_het_problem)
        warm = handle.warm_start_from(greedy)
        result = HighsBackend().solve(handle.model, warm_start=warm)
        assert result.objective <= greedy.area() + 1e-9

    def test_canonicalize_preserves_metrics(self, tiny_het_problem):
        greedy = greedy_first_fit(tiny_het_problem)
        canon = canonicalize_mapping(greedy)
        assert canon.area() == pytest.approx(greedy.area())
        assert canon.total_routes() == greedy.total_routes()
        assert canon.global_routes() == greedy.global_routes()
        assert canon.is_valid()

    def test_canonical_enabled_slots_are_group_prefixes(self, tiny_het_problem):
        greedy = greedy_first_fit(tiny_het_problem)
        canon = canonicalize_mapping(greedy)
        enabled = set(canon.enabled_slots())
        for group in tiny_het_problem.architecture.identical_slot_groups():
            used = [j for j in group if j in enabled]
            assert used == group[: len(used)]
