"""End-to-end daemon tests: submit, poll, stream, cancel, share state."""

from __future__ import annotations

import threading

import pytest

from repro.batch.engine import BatchMapper
from repro.dse.scenario import (
    ArchitectureSpec,
    FormulationSpec,
    Scenario,
    ScenarioRegistry,
    WorkloadSpec,
)
from repro.service.client import ServiceError
from repro.service.daemon import MappingService
from repro.service.jobs import JOB_CANCELLED, JOB_DONE
from repro.service.wire import JobSpec

pytestmark = [pytest.mark.service, pytest.mark.dse]


class TestLifecycle:
    def test_submit_poll_result(self, live_service, tiny_scenario):
        _, client = live_service
        job = client.submit(scenarios=[tiny_scenario])
        assert job["status"] in ("queued", "running", "done")
        detail = client.wait(job["id"], timeout=60)
        assert detail["status"] == JOB_DONE
        (result,) = detail["results"]
        assert result["status"] == "ok"
        assert result["scenario"] == tiny_scenario.name
        assert result["solves"] >= 1
        assert set(result["objectives"]) >= {"area", "energy", "latency"}
        assert result["assignment"]  # neuron -> slot, string keys

    def test_stream_replays_and_follows_to_done(self, live_service, tiny_scenario):
        _, client = live_service
        job = client.submit(scenarios=[tiny_scenario])
        events = [event["event"] for event in client.stream(job["id"])]
        assert events[0] == "queued"
        assert "result" in events
        assert events[-1] == JOB_DONE

    def test_greedy_tier_needs_no_solves(self, live_service, tiny_scenario):
        _, client = live_service
        job = client.submit(scenarios=[tiny_scenario], tier="greedy")
        detail = client.wait(job["id"], timeout=60)
        assert detail["status"] == JOB_DONE
        (result,) = detail["results"]
        assert result["solves"] == 0
        assert result["objectives"] is not None

    def test_failing_scenario_fails_the_job(self, live_service):
        _, client = live_service
        bad = Scenario(
            architecture=ArchitectureSpec(kind="homogeneous", dimension=12),
            # Table I has no network "Z": construction fails per-scenario.
            workload=WorkloadSpec(network="Z", scale=0.1, profile="uniform"),
            formulation=FormulationSpec(),
        )
        job = client.submit(scenarios=[bad])
        detail = client.wait(job["id"], timeout=60)
        assert detail["status"] == "error"
        assert detail["results"][0]["status"] == "error"

    def test_http_errors(self, live_service, tiny_scenario):
        _, client = live_service
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-999999-nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.submit(payload={"scenarios": []})
        assert excinfo.value.status == 400

    def test_health_and_job_listing(self, live_service, tiny_scenario):
        _, client = live_service
        health = client.health()
        assert health["status"] == "ok"
        assert health["cache"] is not None
        job = client.submit(scenarios=[tiny_scenario])
        client.wait(job["id"], timeout=60)
        listed = client.jobs()
        assert any(entry["id"] == job["id"] for entry in listed)
        assert client.health()["store_entries"] >= 1


class TestSharedState:
    def test_repeat_job_is_a_zero_solve_hit(self, live_service, tiny_scenario):
        _, client = live_service
        first = client.wait(
            client.submit(scenarios=[tiny_scenario])["id"], timeout=60
        )
        second = client.wait(
            client.submit(scenarios=[tiny_scenario])["id"], timeout=60
        )
        r1, r2 = first["results"][0], second["results"][0]
        assert r1["solves"] >= 1 and not r1["cached"]
        assert r2["solves"] == 0 and r2["cached"]
        # The answer is the *same* answer, not a re-derivation.
        assert r2["objectives"] == r1["objectives"]
        assert r2["assignment"] == r1["assignment"]
        assert r2["fingerprint"] == r1["fingerprint"]

    def test_parallel_clients_share_the_cache(self, live_service, tiny_scenario):
        """Concurrent identical submissions cost one solve total."""
        _, client = live_service
        details: list[dict] = []
        errors: list[Exception] = []

        def _one_client() -> None:
            try:
                job = client.submit(scenarios=[tiny_scenario])
                details.append(client.wait(job["id"], timeout=120))
            except Exception as exc:  # surfaces in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=_one_client) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(details) == 3
        assert all(d["status"] == JOB_DONE for d in details)
        results = [d["results"][0] for d in details]
        # One submission did the solve; every other one shared its answer.
        assert sum(r["solves"] for r in results) == 1
        assert sum(1 for r in results if r["cached"]) == 2
        assert len({str(r["assignment"]) for r in results}) == 1

    def test_service_result_is_bit_identical_to_direct_batchmapper(
        self, live_service, tiny_scenario
    ):
        """Acceptance: the daemon adds plumbing, not noise."""
        _, client = live_service
        detail = client.wait(
            client.submit(scenarios=[tiny_scenario], time_limit=5.0)["id"],
            timeout=60,
        )
        service_result = detail["results"][0]

        registry = ScenarioRegistry()
        job = registry.to_job(tiny_scenario, time_limit=5.0)
        record = BatchMapper().map_all([job]).record(job.name)
        direct = {
            str(i): j for i, j in record.final().mapping.assignment.items()
        }
        assert service_result["assignment"] == direct


class TestCancellation:
    def test_cancel_before_workers_start(self, tiny_scenario):
        service = MappingService()  # never started: jobs stay queued
        job = service.submit(JobSpec(scenarios=(tiny_scenario,)))
        cancelled = service.cancel(job.id)
        assert cancelled is not None and cancelled.status == JOB_CANCELLED
        assert job.token.cancelled
        # A worker starting later must drop the job, not run it.
        service.start()
        service.stop(wait=True)
        assert job.status == JOB_CANCELLED
        assert job.results == []

    def test_start_loses_the_race_to_cancel(self, tiny_scenario):
        """A cancel landing between pop and start() must stick."""
        from repro.service.jobs import JobRegistry

        registry = JobRegistry()
        job = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        assert registry.cancel(job.id).status == JOB_CANCELLED
        assert registry.start(job) is False  # no resurrection
        assert job.status == JOB_CANCELLED
        events = [event["event"] for event in job.events]
        assert events[-1] == JOB_CANCELLED  # terminal event stays last

    def test_finished_jobs_are_evicted_beyond_the_retention_cap(
        self, tiny_scenario
    ):
        from repro.service.jobs import JOB_DONE as DONE
        from repro.service.jobs import JobRegistry

        registry = JobRegistry(max_finished=2)
        jobs = [
            registry.create(JobSpec(scenarios=(tiny_scenario,)))
            for _ in range(4)
        ]
        for job in jobs:
            registry.start(job)
            registry.finish(job, DONE)
        remaining = [job.id for job in registry.jobs()]
        assert remaining == [jobs[2].id, jobs[3].id]  # oldest evicted
        assert registry.get(jobs[0].id) is None
        # Running/queued jobs are never evicted, whatever the cap.
        live = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        registry.start(live)
        for _ in range(3):
            extra = registry.create(JobSpec(scenarios=(tiny_scenario,)))
            registry.start(extra)
            registry.finish(extra, DONE)
        assert registry.get(live.id) is live

    def test_eviction_follows_finish_order_not_submission_order(
        self, tiny_scenario
    ):
        """A long-running early job must outlive later, earlier-finished ones.

        The regression this guards: eviction walked the registry in
        insertion order, so a slow job submitted first was evicted the
        moment it finished — even though jobs that finished long before
        it were fresher by submission time and survived.
        """
        from repro.service.jobs import JOB_DONE as DONE
        from repro.service.jobs import JobRegistry

        registry = JobRegistry(max_finished=2)
        slow = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        quick_1 = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        quick_2 = registry.create(JobSpec(scenarios=(tiny_scenario,)))
        for job in (slow, quick_1, quick_2):
            registry.start(job)
        # Finish out of submission order: quick_1, quick_2, then slow.
        registry.finish(quick_1, DONE)
        registry.finish(quick_2, DONE)
        registry.finish(slow, DONE)
        remaining = {job.id for job in registry.jobs()}
        assert remaining == {quick_2.id, slow.id}  # oldest-*finished* went
        assert registry.get(quick_1.id) is None

    def test_multi_scenario_job_reports_every_scenario(
        self, live_service, tiny_scenario
    ):
        """One submission, many scenarios: all answered, one batch."""
        _, client = live_service
        second = Scenario(
            architecture=ArchitectureSpec(kind="homogeneous", dimension=16),
            workload=tiny_scenario.workload,
            formulation=tiny_scenario.formulation,
        )
        job = client.submit(scenarios=[tiny_scenario, second], time_limit=5.0)
        detail = client.wait(job["id"], timeout=120)
        assert detail["status"] == JOB_DONE
        names = [result["scenario"] for result in detail["results"]]
        assert names == [tiny_scenario.name, second.name]
        assert all(result["status"] == "ok" for result in detail["results"])

    def test_cancel_unknown_job_is_none(self, live_service):
        service, client = live_service
        assert service.cancel("job-000000-nope") is None
        with pytest.raises(ServiceError) as excinfo:
            client.cancel("job-000000-nope")
        assert excinfo.value.status == 404

    def test_cancel_endpoint_on_finished_job_is_idempotent(
        self, live_service, tiny_scenario
    ):
        _, client = live_service
        job = client.submit(scenarios=[tiny_scenario])
        client.wait(job["id"], timeout=60)
        summary = client.cancel(job["id"])  # finished: state is preserved
        assert summary["status"] == JOB_DONE

    def test_shutdown_drains_the_backlog_as_cancelled(self, tiny_scenario):
        """202-accepted jobs must end terminal, never vanish mid-queue."""
        service = MappingService()
        jobs = [
            service.submit(JobSpec(scenarios=(tiny_scenario,)))
            for _ in range(3)
        ]
        # Close before the workers exist: everything popped after close
        # is backlog and must be cancelled, not executed.
        service.queue.close()
        service.start()
        service.stop(wait=True)
        for job in jobs:
            assert job.status == JOB_CANCELLED
            assert job.results == []
            assert job.events[-1]["event"] == JOB_CANCELLED
