"""Solver portfolio: race several backends on one model, keep the best.

MILP solvers have wildly instance-dependent performance; a portfolio that
runs HiGHS and the pure-Python branch and bound on the same model and
keeps the best incumbent is more robust than betting on either alone
(HiGHS usually wins on raw speed; the B&B occasionally lands a better
incumbent inside a tight budget because its warm-started primal heuristics
fire immediately).

Two race modes:

- ``sequential`` (default, deterministic): members run one after another,
  stopping early once a member proves optimality.  Worst-case wall time is
  the sum of member budgets; results are bit-for-bit reproducible.
- ``threads``: members run concurrently and overlap their wall time.  The
  winner is still chosen by the same deterministic rule after *all*
  members finish (SciPy solves cannot be cancelled mid-flight), so results
  stay reproducible while wall time approaches the slowest member's.

The winner is the member with the lowest objective; ties break on lower
deterministic time, then on portfolio order.

Sequential races also *share incumbents* (see
:class:`PortfolioOptions.share_incumbents`): each member's best solution
seeds the next member's warm start, so ordering a cheap heuristic arm
(``lp_round``) before the exact arms hands them a strong cutoff before
they open their root node.  :data:`ACCELERATED_SPECS` is that
composition, ready-made.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .. import trace
from ..ilp.model import Model, ObjectiveSense
from ..ilp.result import SolveResult, SolveStatus
from ..ilp.solve import SolverSpec, solve_model

#: The default portfolio: full-budget HiGHS plus a node-capped B&B.
DEFAULT_SPECS = (
    SolverSpec("highs"),
    SolverSpec("bnb", node_limit=20_000),
)

#: The structure-exploiting portfolio: the LP-rounding racer produces a
#: strong incumbent in O(LP) time and donates it to a node-capped exact
#: arm, which now prunes against that cutoff instead of searching blind.
ACCELERATED_SPECS = (
    SolverSpec("lp_round", time_limit=5.0),
    SolverSpec("highs", node_limit=200, emphasis="speed"),
)

RACE_MODES = ("sequential", "threads")


@dataclass(frozen=True)
class PortfolioOptions:
    """Which backends race, and how.

    ``share_incumbents`` (sequential races only): each member's best
    incumbent is donated as the warm start of every later member when it
    beats what they would otherwise have been seeded with.  Exact
    backends turn that seed into a cutoff and prune against it from the
    root node on — this is how a fast heuristic arm (``lp_round``)
    accelerates the exact arms that follow it.  Donation never *loses*
    information: a member still falls back to its own search if the seed
    does not help, and the race winner is picked by the same
    deterministic rule either way.  Thread races cannot donate (members
    start simultaneously).
    """

    specs: tuple[SolverSpec, ...] = DEFAULT_SPECS
    race: str = "sequential"
    stop_on_optimal: bool = True  # sequential mode: skip members after a proof
    share_incumbents: bool = True  # sequential mode: donate best incumbent

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("a portfolio needs at least one member spec")
        if self.race not in RACE_MODES:
            raise ValueError(
                f"unknown race mode {self.race!r}; choose from {RACE_MODES}"
            )


def winning_arm(backend: str) -> str | None:
    """The member arm inside a ``portfolio[...]`` backend tag, or ``None``.

    Solve summaries carry the winner as ``portfolio[<member>]`` (with an
    optional ``-interrupted`` suffix on degraded races); this is what
    per-arm win-rate metrics key on.  Non-portfolio backends map to
    ``None`` so callers can feed every summary through unconditionally.
    """
    prefix = "portfolio["
    if not backend.startswith(prefix) or not backend.endswith("]"):
        return None
    inner = backend[len(prefix) : -1]
    return inner.removesuffix("-interrupted")


class PortfolioSolver:
    """A :class:`~repro.mapping.pipeline.SolverBackend` over many members.

    ``on_race`` is an optional hook called after every race with
    ``(winner, results)`` — the finalized winning :class:`SolveResult`
    and every member's result in portfolio order.  The mapping daemon's
    metrics use it to count per-arm wins when the solver runs in-process
    (pooled runs report the same information parent-side, parsed out of
    the worker payload's backend tags).
    """

    name = "portfolio"

    def __init__(self, options: PortfolioOptions | None = None) -> None:
        self.options = options or PortfolioOptions()
        self.on_race = None

    def solve(
        self,
        model: Model,
        warm_start=None,
        keep_values: bool = True,
    ) -> SolveResult:
        """Race every member on ``model`` and return the best result.

        The returned result is the winning member's, re-tagged as
        ``portfolio[<member>]``, with ``det_time`` summed over every member
        that actually ran (deterministic effort is paid regardless of who
        wins).
        """
        opts = self.options
        # Assemble the shared matrix form once, up front: every racer's
        # Model.lower() (and warm-start feasibility check) then reuses the
        # cached system instead of re-lowering per backend — including in
        # thread mode, where racers would otherwise assemble concurrently.
        lower_entry = time.perf_counter()
        model.lower()
        lower_wall = time.perf_counter() - lower_entry
        race_start = time.time()
        results: list[SolveResult] = []
        if opts.race == "threads" and len(opts.specs) > 1:
            with ThreadPoolExecutor(max_workers=len(opts.specs)) as pool:
                futures = [
                    pool.submit(solve_model, model, spec, warm_start, keep_values)
                    for spec in opts.specs
                ]
                results = [f.result() for f in futures]
        else:
            # Sequential incumbent sharing: the best solution seen so far
            # (including a feasible caller-supplied warm start) seeds every
            # later member, so exact arms inherit the heuristic arms'
            # incumbents as root-node cutoffs.
            fold = 1.0 if model.objective_sense is ObjectiveSense.MINIMIZE else -1.0
            donated = warm_start
            best_folded: float | None = None
            if opts.share_incumbents and warm_start is not None:
                x0 = model.dense_values(warm_start)
                if not model.check_feasible(x0):
                    best_folded = fold * model.objective_of(x0)
            for spec in opts.specs:
                result = solve_model(model, spec, donated, keep_values)
                results.append(result)
                if opts.stop_on_optimal and result.status is SolveStatus.OPTIMAL:
                    break
                if result.backend.endswith("-interrupted"):
                    # Cancellation reached us mid-race: don't start more
                    # members, report the best of what finished.
                    break
                if (
                    opts.share_incumbents
                    and result.status.has_solution()
                    and result.objective is not None
                    and result.x is not None
                ):
                    folded = fold * result.objective
                    if best_folded is None or folded < best_folded:
                        best_folded = folded
                        donated = result.x

        # Per-arm race spans: derived post-race from each member's own
        # wall time (thread racers don't inherit the ambient context, so
        # recording here covers both race modes).  Sequential arms are
        # laid end to end; threaded arms all start at the race start.
        arm_start = race_start
        for member in results:
            trace.record_span(
                f"arm:{member.backend}",
                start=arm_start,
                duration=member.wall_time,
                status=member.status.value,
                objective=member.objective,
                bound=member.bound,
                det_time=member.det_time,
                nodes=member.node_count,
            )
            if opts.race != "threads":
                arm_start += member.wall_time

        winner = _pick_winner(results, model.objective_sense)
        winner.det_time = sum(r.det_time for r in results)
        winner.wall_time = (
            max(r.wall_time for r in results)
            if opts.race == "threads"
            else sum(r.wall_time for r in results)
        )
        winner.backend = f"{self.name}[{winner.backend}]"
        # The shared lowering above is work the winning arm's own phase
        # breakdown never saw — prepend it so phase histograms account
        # for every second the portfolio spent.
        winner.phases = (("lower", lower_wall),) + tuple(winner.phases)
        # A race truncated by cancellation is itself degraded unless the
        # winner independently proved optimality — tag it so the batch
        # cache refuses the result even when the interrupted member lost.
        race_interrupted = any("-interrupted" in r.backend for r in results)
        if (
            race_interrupted
            and winner.status is not SolveStatus.OPTIMAL
            and "-interrupted" not in winner.backend
        ):
            winner.backend += "-interrupted"
        if self.on_race is not None:
            self.on_race(winner, results)
        return winner


def _pick_winner(
    results: list[SolveResult], sense: ObjectiveSense
) -> SolveResult:
    """Deterministic selection: best objective, then det time, then order.

    "Best" honors the model's objective sense (objectives are user-facing,
    so a maximize model wants the largest).  Members without a solution
    only win when nobody found one — in which case the first conclusive
    status (infeasible/unbounded beats a bare limit-out) is reported.
    """
    fold = 1.0 if sense is ObjectiveSense.MINIMIZE else -1.0
    solved = [
        (fold * r.objective, r.det_time, pos, r)
        for pos, r in enumerate(results)
        if r.status.has_solution() and r.objective is not None
    ]
    if solved:
        return min(solved, key=lambda item: item[:3])[3]
    conclusive = [
        r
        for r in results
        if r.status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED)
    ]
    return conclusive[0] if conclusive else results[0]


def portfolio_solver_factory(
    specs: tuple[SolverSpec, ...] = DEFAULT_SPECS,
    race: str = "sequential",
    split_budget: bool | None = None,
) -> "callable":
    """A :class:`~repro.mapping.pipeline.SolverFactory` that races ``specs``.

    The stage's time budget is honored as a *total*: sequential races split
    it evenly across members (their wall times add up), while thread races
    give every member the full budget (they overlap).  ``split_budget``
    overrides that default.
    """
    split = split_budget if split_budget is not None else race == "sequential"

    def factory(time_limit: float | None) -> PortfolioSolver:
        per_member = (
            time_limit / len(specs)
            if split and time_limit is not None
            else time_limit
        )
        timed = tuple(spec.with_time_limit(per_member) for spec in specs)
        return PortfolioSolver(PortfolioOptions(specs=timed, race=race))

    return factory
