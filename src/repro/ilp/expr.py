"""Linear expressions over decision variables.

This module provides a tiny, dependency-free algebraic layer (in the spirit
of PuLP / OR-Tools' model builders) used by :mod:`repro.ilp.model` to state
ILP formulations declaratively.  Expressions are affine combinations of
variables; comparisons against expressions or numbers produce
:class:`Constraint` objects that a :class:`~repro.ilp.model.Model` collects.

Operator-built expressions are the *convenience* path: every ``x + y <= 1``
allocates a coefficient dict per intermediate, so cost grows with the
number of Python-level terms.  :class:`~repro.ilp.model.Model` stores all
constraints columnarly regardless of how they were stated; when a builder
can phrase a whole constraint family as index arithmetic over NumPy
arrays, it should call :meth:`~repro.ilp.model.Model.add_block` directly
and skip this layer entirely — that is the O(nnz) fast path.  Prefer
operators for small models, tests and one-off rows; prefer ``add_block``
for anything sized by the instance (neurons x slots, synapse lists).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping

Number = (int, float)


class VarType(enum.Enum):
    """Domain of a decision variable."""

    BINARY = "binary"
    INTEGER = "integer"
    CONTINUOUS = "continuous"


class Sense(enum.Enum):
    """Constraint comparison sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class _Algebra:
    """Mixin implementing affine arithmetic shared by Variable and LinExpr."""

    def _as_expr(self) -> "LinExpr":
        raise NotImplementedError

    def __add__(self, other) -> "LinExpr":
        return self._as_expr()._add(other, 1.0)

    def __radd__(self, other) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other) -> "LinExpr":
        return self._as_expr()._add(other, -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (-self._as_expr())._add(other, 1.0)

    def __neg__(self) -> "LinExpr":
        return self._as_expr() * -1.0

    def __mul__(self, scalar) -> "LinExpr":
        if not isinstance(scalar, Number):
            raise TypeError(f"can only scale by a number, got {type(scalar)!r}")
        expr = self._as_expr()
        coeffs = {idx: c * scalar for idx, c in expr.coeffs.items()}
        return LinExpr(coeffs, expr.constant * scalar)

    def __rmul__(self, scalar) -> "LinExpr":
        return self.__mul__(scalar)

    def __truediv__(self, scalar) -> "LinExpr":
        if not isinstance(scalar, Number):
            raise TypeError(f"can only divide by a number, got {type(scalar)!r}")
        return self.__mul__(1.0 / scalar)

    def __le__(self, other) -> "Constraint":
        return Constraint(self._as_expr() - other, Sense.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self._as_expr() - other, Sense.GE)

    # NOTE: we deliberately hijack == for constraint construction, as PuLP
    # does.  Identity checks on variables must use `is`.
    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self._as_expr() - other, Sense.EQ)

    def __ne__(self, other):  # type: ignore[override]
        raise TypeError("!= constraints are not expressible in linear programs")

    __hash__ = None  # type: ignore[assignment]


class Variable(_Algebra):
    """A single decision variable.

    Instances are created by :meth:`repro.ilp.model.Model.add_var`; the
    ``index`` is the column of the variable in the lowered matrix form.
    """

    __slots__ = ("name", "index", "lb", "ub", "vartype")

    def __init__(
        self,
        name: str,
        index: int,
        lb: float,
        ub: float,
        vartype: VarType,
    ) -> None:
        self.name = name
        self.index = index
        self.lb = lb
        self.ub = ub
        self.vartype = vartype

    def _as_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def is_integer(self) -> bool:
        return self.vartype in (VarType.BINARY, VarType.INTEGER)

    def __hash__(self) -> int:  # variables are hashable by identity index
        return hash((id(type(self)), self.index))

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, idx={self.index}, {self.vartype.value})"


class LinExpr(_Algebra):
    """An affine expression ``sum(coeffs[i] * var_i) + constant``.

    Coefficients are keyed by variable *index* (column), which keeps the
    structure cheap to lower into sparse matrices.
    """

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[int, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    def _as_expr(self) -> "LinExpr":
        return self

    def _add(self, other, sign: float) -> "LinExpr":
        coeffs = dict(self.coeffs)
        constant = self.constant
        if isinstance(other, Number):
            constant += sign * other
        elif isinstance(other, Variable):
            coeffs[other.index] = coeffs.get(other.index, 0.0) + sign
        elif isinstance(other, LinExpr):
            for idx, c in other.coeffs.items():
                coeffs[idx] = coeffs.get(idx, 0.0) + sign * c
            constant += sign * other.constant
        else:
            raise TypeError(f"cannot combine LinExpr with {type(other)!r}")
        return LinExpr(coeffs, constant)

    def evaluate(self, values: Mapping[int, float]) -> float:
        """Evaluate the expression given variable values keyed by index."""
        return self.constant + sum(c * values[idx] for idx, c in self.coeffs.items())

    def drop_zeros(self, tol: float = 0.0) -> "LinExpr":
        """Return a copy without (near-)zero coefficients."""
        coeffs = {i: c for i, c in self.coeffs.items() if abs(c) > tol}
        return LinExpr(coeffs, self.constant)

    def __bool__(self) -> bool:
        raise TypeError(
            "LinExpr has no truth value; did you mean to add it as a constraint?"
        )

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*v{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms or '0'} + {self.constant:g})"


def lin_sum(items: Iterable) -> LinExpr:
    """Sum variables/expressions/numbers into a single :class:`LinExpr`.

    Unlike the builtin :func:`sum`, this runs in linear time in the total
    number of terms (no quadratic dict copying).
    """
    coeffs: dict[int, float] = {}
    constant = 0.0
    for item in items:
        if isinstance(item, Number):
            constant += item
        elif isinstance(item, Variable):
            coeffs[item.index] = coeffs.get(item.index, 0.0) + 1.0
        elif isinstance(item, LinExpr):
            for idx, c in item.coeffs.items():
                coeffs[idx] = coeffs.get(idx, 0.0) + c
            constant += item.constant
        else:
            raise TypeError(f"cannot sum {type(item)!r}")
    return LinExpr(coeffs, constant)


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalized form."""

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: Sense, name: str = ""):
        self.expr = expr
        self.sense = sense
        self.name = name

    def named(self, name: str) -> "Constraint":
        """Attach a name (useful for debugging infeasibilities)."""
        self.name = name
        return self

    def satisfied(self, values: Mapping[int, float], tol: float = 1e-6) -> bool:
        """Check whether the constraint holds for the given assignment."""
        lhs = self.expr.evaluate(values)
        if self.sense is Sense.LE:
            return lhs <= tol
        if self.sense is Sense.GE:
            return lhs >= -tol
        return abs(lhs) <= tol

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense.value} 0{label})"
