"""Tests for infeasibility diagnosis (IIS deletion filter)."""

import pytest

from repro.ilp.diagnostics import explain_infeasibility, find_iis
from repro.ilp.expr import lin_sum
from repro.ilp.model import Model


def conflicting_pair_model():
    """x >= 0.7 and x <= 0.3 conflict; everything else is innocent."""
    m = Model("conflict")
    x = m.add_binary("x")
    y = m.add_binary("y")
    m.add(x >= 0.7, name="lo")
    m.add(x <= 0.3, name="hi")
    m.add(y <= 1, name="innocent1")
    m.add(x + y <= 2, name="innocent2")
    m.minimize(x + y)
    return m


class TestFindIis:
    def test_core_is_the_conflicting_pair(self):
        result = find_iis(conflicting_pair_model())
        assert sorted(result.names()) == ["hi", "lo"]

    def test_core_is_infeasible_alone(self):
        model = conflicting_pair_model()
        result = find_iis(model)
        from repro.ilp.diagnostics import _is_infeasible, _rebuild

        assert _is_infeasible(_rebuild(model, result.core), 5.0)

    def test_core_is_irreducible(self):
        model = conflicting_pair_model()
        result = find_iis(model)
        from repro.ilp.diagnostics import _is_infeasible, _rebuild

        for skip in range(len(result.core)):
            subset = [c for i, c in enumerate(result.core) if i != skip]
            assert not _is_infeasible(_rebuild(model, subset), 5.0)

    def test_feasible_model_rejected(self):
        m = Model()
        x = m.add_binary("x")
        m.add(x <= 1, name="ok")
        m.minimize(x)
        with pytest.raises(ValueError, match="feasible"):
            find_iis(m)

    def test_size_cap(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        for i, x in enumerate(xs):
            m.add(x <= 1, name=f"c{i}")
        m.minimize(lin_sum(xs))
        with pytest.raises(ValueError, match="capped"):
            find_iis(m, max_constraints=2)

    def test_overdetermined_conflict_shrinks_to_a_pair(self):
        # x+y >= 2 forces x = y = 1, so EITHER ban alone conflicts with
        # it: the irreducible core is a pair, not all three rows.
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add(x + y >= 2, name="need_both")
        m.add(x <= 0, name="ban_x")
        m.add(y <= 0, name="ban_y")
        m.minimize(x)
        result = find_iis(m)
        names = sorted(result.names())
        assert len(names) == 2
        assert "need_both" in names
        assert names[0] in ("ban_x", "ban_y")


class TestExplain:
    def test_message_names_core(self):
        text = explain_infeasibility(conflicting_pair_model())
        assert "lo" in text and "hi" in text
        assert "unsatisfiable" in text

    def test_feasible_message(self):
        m = Model()
        x = m.add_binary("x")
        m.add(x <= 1)
        m.minimize(x)
        assert "no diagnosis" in explain_infeasibility(m)


class TestMappingDiagnosis:
    def test_undersized_pool_explained(self):
        """A mapping model made infeasible by an area budget too tight."""
        from repro.mapping.problem import MappingProblem
        from repro.mapping.snu import RouteModel, RouteModelOptions
        from repro.mca.architecture import custom_architecture
        from repro.mca.crossbar import CrossbarType
        from repro.snn.generators import random_network

        net = random_network(6, 10, seed=6, max_fan_in=4)
        arch = custom_architecture([(CrossbarType(8, 8), 2)])
        problem = MappingProblem(net, arch)
        handle = RouteModel(
            problem,
            [0, 1],
            RouteModelOptions(area_budget=10.0),  # below one slot's area
        )
        result = find_iis(handle.model)
        assert "area_budget" in result.names()
