"""Tests for the staged pipeline and metric records."""

import pytest

from repro.mapping.metrics import evaluate_mapping, improvement_pct
from repro.mapping.pgo import SpikeProfile
from repro.mapping.pipeline import MappingPipeline
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import heterogeneous_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network


@pytest.fixture
def problem():
    net = random_network(14, 28, seed=12, max_fan_in=6)
    arch = heterogeneous_architecture(
        14,
        types=[CrossbarType(4, 4), CrossbarType(8, 4), CrossbarType(8, 8)],
        max_slots_per_type=6,
    )
    return MappingProblem(net, arch)


@pytest.fixture
def profile(problem):
    return SpikeProfile(
        counts={k: (k * 3) % 7 for k in problem.network.neuron_ids()}
    )


class TestImprovementPct:
    def test_reduction_positive(self):
        assert improvement_pct(100, 80) == pytest.approx(20.0)

    def test_regression_negative(self):
        assert improvement_pct(100, 120) == pytest.approx(-20.0)

    def test_zero_baseline_zero_improved(self):
        assert improvement_pct(0, 0) == 0.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ZeroDivisionError):
            improvement_pct(0, 5)


class TestEvaluateMapping:
    def test_without_profile(self, problem):
        from repro.mapping.greedy import greedy_first_fit

        metrics = evaluate_mapping(greedy_first_fit(problem))
        assert metrics.global_packets is None
        assert metrics.total_packets is None
        assert metrics.total_routes == metrics.local_routes + metrics.global_routes

    def test_with_profile(self, problem, profile):
        from repro.mapping.greedy import greedy_first_fit

        metrics = evaluate_mapping(greedy_first_fit(problem), profile.counts)
        assert metrics.global_packets is not None
        assert metrics.total_packets == metrics.local_packets + metrics.global_packets


class TestPipeline:
    def test_full_pipeline_monotone_improvements(self, problem, profile):
        pipeline = MappingPipeline(problem, area_time_limit=8, route_time_limit=5)
        result = pipeline.run(("area", "snu", "pgo"), profile=profile)
        assert list(result.stages) == ["area", "snu", "pgo"]
        area = result.stages["area"]
        snu = result.stages["snu"]
        pgo = result.stages["pgo"]
        # SNU/PGO freeze the area budget.
        assert snu.metrics.area <= area.metrics.area + 1e-9
        assert pgo.metrics.area <= area.metrics.area + 1e-9
        # SNU cannot have more global routes than the area solution.
        assert snu.metrics.global_routes <= area.metrics.global_routes
        # PGO cannot have more expected packets than its SNU warm start.
        assert pgo.metrics.global_packets <= snu.metrics.global_packets
        assert result.total_det_time() > 0
        assert result.final() is pgo

    def test_area_only(self, problem):
        pipeline = MappingPipeline(problem, area_time_limit=5)
        result = pipeline.run(("area",))
        assert list(result.stages) == ["area"]
        assert result.stages["area"].mapping.is_valid()

    def test_pgo_requires_profile(self, problem):
        pipeline = MappingPipeline(problem)
        with pytest.raises(ValueError, match="profile"):
            pipeline.run(("area", "pgo"))

    def test_unknown_stage_rejected(self, problem):
        with pytest.raises(ValueError, match="unknown stages"):
            MappingPipeline(problem).run(("area", "warp"))

    def test_empty_stage_tuple_returns_greedy(self, problem):
        result = MappingPipeline(problem).run(())
        assert list(result.stages) == ["greedy"]
        assert result.final().mapping.is_valid()

    def test_accepts_raw_profile_dict(self, problem, profile):
        pipeline = MappingPipeline(problem, area_time_limit=5, route_time_limit=3)
        result = pipeline.run(("area", "pgo"), profile=dict(profile.counts))
        assert "pgo" in result.stages
