"""Tests for the ablation exhibit."""

import pytest

from repro.experiments.ablation import VARIANTS, run_ablation
from repro.experiments.runner import ExperimentConfig

TINY = ExperimentConfig(scale=0.08, area_time_limit=4.0, het_slots_per_type=10)


class TestAblationExhibit:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation(TINY, network_name="E")

    def test_all_variants_reported(self, result):
        assert len(result.rows) == len(VARIANTS)
        labels = {row[0] for row in result.rows}
        assert labels == set(VARIANTS)

    def test_optimum_invariant_across_variants(self, result):
        objectives = {row[1] for row in result.rows}
        assert len(objectives) == 1, objectives
        assert "share one optimum" in result.report

    def test_knobs_change_model_size(self, result):
        by_label = {row[0]: row for row in result.rows}
        base = by_label["baseline (paper-faithful)"]
        aggregated = by_label["aggregated sharing (6)"]
        no_link = by_label["no upper link (5)"]
        # rows column is index 3.
        assert aggregated[3] < base[3]
        assert no_link[3] < base[3]

    def test_variable_count_constant(self, result):
        assert len({row[2] for row in result.rows}) == 1
