"""Parallel batch mapping: process pools, solver portfolios, result cache.

The sweep-scale layer above :mod:`repro.mapping`: a :class:`BatchMapper`
runs many independent mapping pipelines at once across worker processes,
optionally racing solver backends per stage (:mod:`~repro.batch.
portfolio`) and skipping instances already solved in earlier sweeps via a
deterministic problem fingerprint (:mod:`~repro.batch.cache`).

>>> from repro.batch import BatchJob, BatchMapper
>>> jobs = [BatchJob(f"net-{i}", net, arch, stages=("area", "snu"))
...         for i, (net, arch) in enumerate(instances)]   # doctest: +SKIP
>>> result = BatchMapper(jobs=4, portfolio=True).map_all(jobs)  # doctest: +SKIP
"""

from .cache import CacheStats, ResultCache
from .engine import (
    JOB_ERROR,
    JOB_OK,
    BatchJob,
    BatchMapper,
    BatchResult,
    JobRecord,
    parallel_map,
)
from .portfolio import (
    DEFAULT_SPECS,
    PortfolioOptions,
    PortfolioSolver,
    portfolio_solver_factory,
)
from .queue import CancelToken, JobQueue

__all__ = [
    "BatchJob",
    "BatchMapper",
    "BatchResult",
    "CacheStats",
    "CancelToken",
    "DEFAULT_SPECS",
    "JOB_ERROR",
    "JOB_OK",
    "JobQueue",
    "JobRecord",
    "PortfolioOptions",
    "PortfolioSolver",
    "ResultCache",
    "parallel_map",
    "portfolio_solver_factory",
]
