"""Fig. 8 reproduction: area/SNU evolution, network A, heterogeneous MCA.

Same protocol as Fig. 7 over the Table-II pool.  The paper observes
uniformly better area/power/solver-time than the homogeneous case, with a
genuine area-routes trade-off emerging at the optimization limit.
"""

from __future__ import annotations

from .common import ExhibitResult, het_problem
from .fig7 import evolution_frontier, hypothetical_bound
from .networks import paper_network
from .runner import ExperimentConfig, format_table


def run_fig8(config: ExperimentConfig) -> ExhibitResult:
    network = paper_network("A", scale=config.scale)
    problem = het_problem(network, config)
    points = evolution_frontier(problem, config)
    bound_area, bound_routes = hypothetical_bound(problem)
    rows = [
        (round(p.det_time, 1), p.area, p.routes_area_opt, p.routes_snu_opt)
        for p in points
    ]
    headers = ["det_time", "area", "routes(area-opt)", "routes(SNU)"]
    note = (
        f"hypothetical one-neuron-per-minimal-crossbar bound: "
        f"area={bound_area:g}, routes={bound_routes} "
        "(paper shape: uniformly better area than Fig. 7 at equal effort)"
    )
    from .report import trend_line

    trends = "\n".join(
        [
            trend_line("area   ", [p.area for p in points]),
            trend_line("routes ", [p.routes_snu_opt for p in points]),
        ]
    )
    return ExhibitResult(
        report=format_table(headers, rows) + "\n" + trends + "\n" + note,
        rows=rows,
    )
