"""Simulation & evaluation core bench: vector vs reference kernels.

Two measurements, both asserted and both emitted to
``benchmarks/BENCH_simcore.json`` so the perf trajectory is tracked
across PRs:

1. **Simulator engines** — the same network / input program / duration is
   run through the scalar reference engine and the NumPy vector engine
   across sizes and densities.  Rasters must be identical; on the
   1k-neuron / 100-timestep workload the vector engine must be >= 10x
   faster.
2. **Delta evaluation** — the per-move objective query local search
   issues, answered by a full from-scratch ``Mapping`` evaluation versus
   the incremental ``DeltaEvaluator``.  Results must agree move for move
   and the delta path must win.

Run:  pytest benchmarks/bench_simulator.py --benchmark-only
"""

import json
import time
from pathlib import Path

import numpy as np

from bench_config import once
from repro.mapping.delta import DeltaEvaluator
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.problem import MappingProblem
from repro.mapping.solution import Mapping
from repro.mca.architecture import heterogeneous_architecture
from repro.snn.generators import random_network
from repro.snn.simulator import Simulator

OUTPUT = Path(__file__).resolve().parent / "BENCH_simcore.json"
#: Root-level copy: the cross-PR perf trajectory is read from the repo
#: root (alongside BENCH_ilp.json), so every run refreshes both.
ROOT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_simcore.json"

#: (neurons, synapses, duration) — sizes/densities swept by the bench.
SIM_CONFIGS = [
    (200, 800, 100),
    (1000, 5000, 100),  # the acceptance workload: >= 10x here
    (1000, 15000, 100),
    (2000, 16000, 100),
]
#: Speedup floor asserted on every 1k-neuron / 100-timestep workload.
MIN_SIM_SPEEDUP = 10.0

#: Sampled relocate moves scored by full vs delta evaluation.
NUM_MOVES = 400


def _run_engine(net, engine, duration, input_spikes, repeats=3):
    sim = Simulator(net, engine=engine)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = sim.run(duration, input_spikes=input_spikes)
        best = min(best, time.perf_counter() - start)
    return best, result


def _bench_simulator() -> list[dict]:
    rows = []
    for neurons, synapses, duration in SIM_CONFIGS:
        net = random_network(neurons, synapses, seed=1, name=f"b{neurons}")
        input_spikes = {
            nid: list(range(0, duration, 7)) for nid in range(0, neurons, 10)
        }
        ref_s, ref = _run_engine(net, "reference", duration, input_spikes)
        vec_s, vec = _run_engine(net, "vector", duration, input_spikes)
        # Identity first: speed without equivalence is meaningless.
        assert vec.spikes == ref.spikes
        assert vec.spike_counts == ref.spike_counts
        neuron_steps = neurons * duration
        rows.append(
            {
                "neurons": neurons,
                "synapses": synapses,
                "duration": duration,
                "total_spikes": ref.total_spikes,
                "reference_seconds": ref_s,
                "vector_seconds": vec_s,
                "reference_neuron_steps_per_sec": neuron_steps / ref_s,
                "vector_neuron_steps_per_sec": neuron_steps / vec_s,
                "speedup": ref_s / vec_s,
            }
        )
    return rows


def _bench_delta() -> dict:
    net = random_network(120, 360, seed=5, max_fan_in=8, name="delta")
    problem = MappingProblem(net, heterogeneous_architecture(120))
    base = greedy_first_fit(problem)
    rng = np.random.default_rng(0)
    neurons = problem.network.neuron_ids()
    moves = [
        (int(rng.choice(neurons)), int(rng.integers(problem.num_slots)))
        for _ in range(NUM_MOVES)
    ]

    # Full evaluation: rebuild the mapping per candidate, as pre-delta
    # local search effectively did per move trial.
    assignment = dict(base.assignment)
    full_scores = []
    start = time.perf_counter()
    for neuron, dst in moves:
        src = assignment[neuron]
        assignment[neuron] = dst
        candidate = Mapping(problem, assignment)
        full_scores.append((candidate.area(), candidate.global_routes()))
        assignment[neuron] = src
    full_s = time.perf_counter() - start

    evaluator = DeltaEvaluator.from_mapping(base)
    delta_scores = []
    start = time.perf_counter()
    for neuron, dst in moves:
        src = evaluator.move(neuron, dst)
        delta_scores.append(evaluator.score())
        evaluator.move(neuron, src)
    delta_s = time.perf_counter() - start

    assert delta_scores == full_scores  # move-for-move equality
    assert evaluator.assignment() == base.assignment  # undone cleanly
    return {
        "neurons": 120,
        "moves": NUM_MOVES,
        "full_eval_seconds": full_s,
        "delta_eval_seconds": delta_s,
        "full_moves_per_sec": NUM_MOVES / full_s,
        "delta_moves_per_sec": NUM_MOVES / delta_s,
        "speedup": full_s / delta_s,
    }


def test_benchmark_simcore(benchmark):
    sim_rows = once(benchmark, _bench_simulator)
    delta_row = _bench_delta()

    payload = {
        "schema": "repro.bench_simcore/1",
        "source": "benchmarks/bench_simulator.py",
        "simulator": sim_rows,
        "local_search_delta": delta_row,
    }
    serialized = json.dumps(payload, indent=2) + "\n"
    OUTPUT.write_text(serialized)
    ROOT_OUTPUT.write_text(serialized)

    for row in sim_rows:
        if row["neurons"] >= 1000 and row["duration"] == 100:
            assert row["speedup"] >= MIN_SIM_SPEEDUP, (
                f"{row['neurons']}n/{row['duration']}t: "
                f"{row['speedup']:.1f}x < {MIN_SIM_SPEEDUP}x"
            )
    # Delta evaluation must deliver a measurable round speedup.
    assert delta_row["speedup"] > 2.0, (
        f"delta evaluation only {delta_row['speedup']:.1f}x faster"
    )
