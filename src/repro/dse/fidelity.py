"""Fidelity-rung solver portfolios for the adaptive DSE driver.

Successive halving (:func:`repro.dse.drivers.explore_adaptive`) evaluates
many candidates cheaply before concentrating budget on survivors.  Until
now every rung paid the same per-solve price; this module gives each rung
its own portfolio composition so the *solver* fidelity scales with the
rung, not just the candidate count:

- **cheap rungs** race the ``lp_round`` heuristic and a loose-gap,
  node-capped HiGHS arm (``emphasis="speed"``) — good-enough incumbents
  in a fraction of the exact cost, exactly what band-selection needs;
- **the top rung** races ``lp_round`` (as an incumbent donor) ahead of a
  full-fidelity exact arm (``emphasis="quality"``, gap 0) — survivors
  get the tight answer the frontier is reported from.

The interpolation is monotone: later rungs never run looser arms than
earlier ones.  Specs are plain :class:`~repro.ilp.solve.SolverSpec`
tuples, picklable and fingerprint-stable, so per-rung results cache
independently (the specs are part of the batch-job fingerprint).
"""

from __future__ import annotations

from ..ilp.solve import SolverSpec

#: Node cap of the exact arm on the cheapest rung; interpolated upward.
_MIN_NODE_CAP = 200

#: Node cap of the exact arm on the second-to-top rung.
_MAX_NODE_CAP = 5_000

#: Relative gap of the exact arm on the cheapest rung; tightens to 0.
_MAX_GAP = 0.10


def rung_solver_specs(rung: int, max_rungs: int) -> tuple[SolverSpec, ...]:
    """The portfolio arms rung ``rung`` (1-based) of ``max_rungs`` races.

    Every rung leads with the ``lp_round`` racer — its incumbent is
    donated to the exact arm as a root-node cutoff (sequential races
    share incumbents).  The exact arm's gap and node cap interpolate from
    loose/capped on rung 1 to exact/uncapped on the top rung.
    """
    if rung < 1:
        raise ValueError("rungs are 1-based")
    top = max(max_rungs, 1)
    if rung >= top:
        return (
            SolverSpec("lp_round", time_limit=5.0),
            SolverSpec("highs", emphasis="quality"),
        )
    # Fraction of the way up the ladder, in [0, 1).
    frac = (rung - 1) / max(top - 1, 1)
    gap = round(_MAX_GAP * (1.0 - frac), 4)
    node_cap = int(_MIN_NODE_CAP + frac * (_MAX_NODE_CAP - _MIN_NODE_CAP))
    return (
        SolverSpec("lp_round", time_limit=5.0),
        SolverSpec(
            "highs",
            mip_rel_gap=gap if gap > 0 else None,
            node_limit=node_cap,
            emphasis="speed",
        ),
    )
