"""repro — reproduction of "Mapping Spiking Neural Networks to
Heterogeneous Crossbar Architectures using Integer Linear Programming"
(DATE 2025).

Public API tour
---------------
- :mod:`repro.snn` — networks, statistics, simulation, generators, EONS.
- :mod:`repro.mca` — crossbar types/pools (Table II), NoC, processor model.
- :mod:`repro.ilp` — ILP modeling layer with HiGHS and branch-and-bound
  backends (the CP-SAT stand-in).
- :mod:`repro.mapping` — the paper's formulations (area / SNU / PGO), the
  SpikeHard baseline, approximate baselines, and the staged pipeline.
- :mod:`repro.profile` — synthetic SmartPixel data and spike profiling.
- :mod:`repro.experiments` — one module per paper table/figure.

Quickstart
----------
>>> from repro import quick_map
>>> from repro.snn import random_network
>>> mapping = quick_map(random_network(32, 64, seed=1))
>>> mapping.is_valid()
True
"""

from .ilp.highs_backend import HighsBackend, HighsOptions
from .mapping.axon_sharing import AreaModel, FormulationOptions
from .mapping.greedy import greedy_first_fit
from .mapping.pipeline import MappingPipeline
from .mapping.problem import MappingProblem
from .mapping.solution import Mapping
from .mca.architecture import (
    heterogeneous_architecture,
    homogeneous_architecture,
)
from .snn.network import Network

__version__ = "1.0.0"

__all__ = [
    "AreaModel",
    "FormulationOptions",
    "HighsBackend",
    "HighsOptions",
    "Mapping",
    "MappingPipeline",
    "MappingProblem",
    "Network",
    "greedy_first_fit",
    "heterogeneous_architecture",
    "homogeneous_architecture",
    "quick_map",
]


def quick_map(
    network: Network,
    heterogeneous: bool = True,
    time_limit: float = 10.0,
) -> Mapping:
    """One-call mapping: area-optimize a network onto a default pool.

    Uses the Table-II heterogeneous pool (or a 16x16 homogeneous pool) and
    returns the best mapping found within ``time_limit`` seconds, warm-
    started by greedy first-fit so a valid mapping is always returned.
    """
    if heterogeneous:
        arch = heterogeneous_architecture(network.num_neurons)
    else:
        arch = homogeneous_architecture(network.num_neurons)
    problem = MappingProblem(network, arch)
    handle = AreaModel(problem)
    warm = handle.warm_start_from(greedy_first_fit(problem))
    result = HighsBackend(HighsOptions(time_limit=time_limit)).solve(
        handle.model, warm_start=warm
    )
    return handle.extract_mapping(result)
