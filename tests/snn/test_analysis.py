"""Tests for structural network analysis."""

import pytest

from repro.snn.analysis import (
    degree_histogram,
    feedback_synapses,
    network_depth,
    structure_report,
    weakly_connected_components,
)
from repro.snn.generators import layered_network, random_network
from repro.snn.network import Network


def two_component_network():
    net = Network("two-comp")
    for i in range(6):
        net.add_neuron(i)
    net.add_synapse(0, 1)
    net.add_synapse(1, 2)
    net.add_synapse(3, 4)  # second component; 5 isolated
    return net


class TestComponents:
    def test_component_decomposition(self):
        comps = weakly_connected_components(two_component_network())
        assert [sorted(c) for c in comps] == [[0, 1, 2], [3, 4], [5]]

    def test_largest_first(self):
        comps = weakly_connected_components(two_component_network())
        sizes = [len(c) for c in comps]
        assert sizes == sorted(sizes, reverse=True)


class TestFeedback:
    def test_acyclic_has_none(self):
        net = layered_network([3, 3, 3], connection_prob=0.8, seed=1)
        assert feedback_synapses(net) == []

    def test_simple_cycle_detected(self):
        net = Network()
        for i in range(3):
            net.add_neuron(i)
        net.add_synapse(0, 1)
        net.add_synapse(1, 2)
        net.add_synapse(2, 0)
        back = feedback_synapses(net)
        assert len(back) == 1
        assert back[0] in [(2, 0), (1, 2), (0, 1)]

    def test_self_loop_detected(self):
        net = Network()
        net.add_neuron(0)
        net.add_synapse(0, 0)
        assert feedback_synapses(net) == [(0, 0)]


class TestDepth:
    def test_chain_depth(self):
        net = Network()
        for i in range(5):
            net.add_neuron(i)
        for i in range(4):
            net.add_synapse(i, i + 1)
        assert network_depth(net) == 4

    def test_cycle_contracts(self):
        net = Network()
        for i in range(4):
            net.add_neuron(i)
        net.add_synapse(0, 1)
        net.add_synapse(1, 0)  # SCC {0,1}
        net.add_synapse(1, 2)
        net.add_synapse(2, 3)
        assert network_depth(net) == 2  # {0,1} -> 2 -> 3

    def test_empty_graphish(self):
        net = Network()
        net.add_neuron(0)
        assert network_depth(net) == 0


class TestReportAndHistogram:
    def test_structure_report_fields(self):
        report = structure_report(two_component_network())
        assert report.num_components == 3
        assert report.largest_component == 3
        assert not report.is_recurrent
        assert report.isolated_neurons == 1
        assert len(report.as_rows()) == 6

    def test_recurrent_flag(self):
        net = Network()
        net.add_neuron(0)
        net.add_neuron(1)
        net.add_synapse(0, 1)
        net.add_synapse(1, 0)
        report = structure_report(net)
        assert report.is_recurrent
        assert report.num_feedback_synapses >= 1

    def test_degree_histogram_sums_to_n(self):
        net = random_network(20, 40, seed=2)
        for direction in ("in", "out"):
            hist = degree_histogram(net, direction)
            assert sum(hist.values()) == 20

    def test_degree_histogram_matches_fan(self):
        net = two_component_network()
        hist = degree_histogram(net, "in")
        assert hist == {0: 3, 1: 3}

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            degree_histogram(two_component_network(), "sideways")
