"""Tests for the SNU (objectives 9/11) and PGO (objective 12) formulations."""

import pytest

from repro.ilp.highs_backend import HighsBackend
from repro.ilp.result import SolveStatus
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.pgo import SpikeProfile, build_pgo_model, expected_global_packets
from repro.mapping.problem import MappingProblem
from repro.mapping.snu import (
    RouteModel,
    RouteModelOptions,
    RouteObjective,
    build_snu_model,
)
from repro.mca.architecture import custom_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network


@pytest.fixture
def problem():
    net = random_network(10, 20, seed=8, max_fan_in=5)
    arch = custom_architecture([(CrossbarType(8, 8), 4)])
    return MappingProblem(net, arch)


@pytest.fixture
def area_mapping(problem):
    handle = AreaModel(problem)
    result = HighsBackend().solve(
        handle.model, warm_start=handle.warm_start_from(greedy_first_fit(problem))
    )
    return handle.extract_mapping(result)


class TestRouteModelValidation:
    def test_empty_slots_rejected(self, problem):
        with pytest.raises(ValueError, match="empty"):
            RouteModel(problem, [])

    def test_unknown_slot_rejected(self, problem):
        with pytest.raises(ValueError, match="not in architecture"):
            RouteModel(problem, [99])

    def test_duplicate_slot_rejected(self, problem):
        with pytest.raises(ValueError, match="twice"):
            RouteModel(problem, [0, 0])

    def test_insufficient_capacity_rejected(self, problem):
        with pytest.raises(ValueError, match="no placement"):
            RouteModel(problem, [0])  # 8 outputs < 10 neurons


class TestSnu:
    def test_snu_never_worse_than_base(self, problem, area_mapping):
        handle = build_snu_model(problem, area_mapping, RouteObjective.GLOBAL)
        result = HighsBackend().solve(
            handle.model, warm_start=handle.warm_start_from(area_mapping)
        )
        optimized = handle.extract_mapping(result)
        assert optimized.global_routes() <= area_mapping.global_routes()

    def test_snu_area_never_increases(self, problem, area_mapping):
        handle = build_snu_model(problem, area_mapping, RouteObjective.GLOBAL)
        result = HighsBackend().solve(
            handle.model, warm_start=handle.warm_start_from(area_mapping)
        )
        optimized = handle.extract_mapping(result)
        assert optimized.area() <= area_mapping.area() + 1e-9

    def test_objective_equals_global_routes(self, problem, area_mapping):
        handle = build_snu_model(problem, area_mapping, RouteObjective.GLOBAL)
        result = HighsBackend().solve(
            handle.model, warm_start=handle.warm_start_from(area_mapping)
        )
        optimized = handle.extract_mapping(result)
        assert result.objective == pytest.approx(optimized.global_routes())

    def test_total_objective_counts_all_routes(self, problem, area_mapping):
        handle = build_snu_model(problem, area_mapping, RouteObjective.TOTAL)
        result = HighsBackend().solve(
            handle.model, warm_start=handle.warm_start_from(area_mapping)
        )
        optimized = handle.extract_mapping(result)
        assert result.objective == pytest.approx(optimized.total_routes())
        assert not handle.b  # total form needs no b variables

    def test_b_lower_row_optional_same_optimum(self, problem, area_mapping):
        with_row = build_snu_model(problem, area_mapping, RouteObjective.GLOBAL)
        opts = RouteModelOptions(
            objective=RouteObjective.GLOBAL,
            include_b_lower=False,
            area_budget=area_mapping.area(),
        )
        without_row = RouteModel(
            problem, area_mapping.enabled_slots(), opts
        )
        r1 = HighsBackend().solve(with_row.model)
        r2 = HighsBackend().solve(without_row.model)
        assert r1.objective == pytest.approx(r2.objective)

    def test_warm_start_feasible(self, problem, area_mapping):
        handle = build_snu_model(problem, area_mapping, RouteObjective.GLOBAL)
        warm = handle.warm_start_from(area_mapping)
        assert handle.model.check_feasible(warm) == []

    def test_warm_start_outside_slots_rejected(self, problem, area_mapping):
        # Restrict to a subset that excludes one enabled slot.
        enabled = area_mapping.enabled_slots()
        if len(enabled) < 2:
            pytest.skip("need at least two enabled slots")
        other = [j for j in range(problem.num_slots) if j != enabled[0]]
        handle = RouteModel(problem, other)
        with pytest.raises(ValueError, match="outside"):
            handle.warm_start_from(area_mapping)


class TestPgo:
    def test_profile_validation(self):
        with pytest.raises(ValueError, match="negative"):
            SpikeProfile(counts={0: -1})

    def test_profile_stats(self):
        profile = SpikeProfile(counts={0: 5, 1: 0, 2: 3})
        assert profile.total_spikes == 8
        assert profile.active_fraction() == pytest.approx(2 / 3)

    def test_hot_sources(self, problem):
        profile = SpikeProfile(
            counts={k: (5 if k % 2 == 0 else 0) for k in problem.network.neuron_ids()}
        )
        hot = profile.hot_sources(problem)
        assert all(k % 2 == 0 for k in hot)
        assert set(hot) <= set(problem.sources())

    def test_pgo_objective_equals_weighted_packets(self, problem, area_mapping):
        counts = {k: 3 * k for k in problem.network.neuron_ids()}
        profile = SpikeProfile(counts=counts)
        handle = build_pgo_model(problem, area_mapping, profile)
        result = HighsBackend().solve(
            handle.model, warm_start=handle.warm_start_from(area_mapping)
        )
        optimized = handle.extract_mapping(result)
        assert result.objective == pytest.approx(
            expected_global_packets(optimized, profile)
        )

    def test_pgo_never_worse_than_base(self, problem, area_mapping):
        counts = {k: (k * 7) % 11 for k in problem.network.neuron_ids()}
        profile = SpikeProfile(counts=counts)
        handle = build_pgo_model(problem, area_mapping, profile)
        result = HighsBackend().solve(
            handle.model, warm_start=handle.warm_start_from(area_mapping)
        )
        optimized = handle.extract_mapping(result)
        assert expected_global_packets(optimized, profile) <= expected_global_packets(
            area_mapping, profile
        )

    def test_silent_neuron_elimination_shrinks_model(self, problem, area_mapping):
        all_hot = SpikeProfile(
            counts={k: 1 for k in problem.network.neuron_ids()}
        )
        mostly_silent = SpikeProfile(
            counts={
                k: (1 if k < 3 else 0) for k in problem.network.neuron_ids()
            }
        )
        big = build_pgo_model(problem, area_mapping, all_hot)
        small = build_pgo_model(problem, area_mapping, mostly_silent)
        assert small.model.num_vars < big.model.num_vars
        assert small.model.num_constraints < big.model.num_constraints

    def test_all_silent_profile_gives_zero_objective(self, problem, area_mapping):
        silent = SpikeProfile(counts={k: 0 for k in problem.network.neuron_ids()})
        handle = build_pgo_model(problem, area_mapping, silent)
        result = HighsBackend().solve(handle.model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(0.0)

    def test_accepts_raw_dict(self, problem, area_mapping):
        handle = build_pgo_model(problem, area_mapping, {0: 4})
        assert handle.weights == {0: 4}
