"""Tests for the linear-expression algebra."""

import pytest

from repro.ilp.expr import Constraint, LinExpr, Sense, VarType, Variable, lin_sum


@pytest.fixture
def x():
    return Variable("x", 0, 0.0, 1.0, VarType.BINARY)


@pytest.fixture
def y():
    return Variable("y", 1, 0.0, 10.0, VarType.INTEGER)


class TestVariable:
    def test_repr_mentions_name_and_type(self, x):
        assert "x" in repr(x)
        assert "binary" in repr(x)

    def test_is_integer(self, x):
        assert x.is_integer()

    def test_continuous_is_not_integer(self):
        v = Variable("c", 2, 0.0, 1.0, VarType.CONTINUOUS)
        assert not v.is_integer()

    def test_hashable_by_index(self, x):
        assert hash(x) == hash(Variable("other", 0, 0, 1, VarType.BINARY))


class TestAlgebra:
    def test_add_variables(self, x, y):
        expr = x + y
        assert expr.coeffs == {0: 1.0, 1: 1.0}
        assert expr.constant == 0.0

    def test_add_constant(self, x):
        expr = x + 5
        assert expr.constant == 5.0

    def test_radd(self, x):
        expr = 5 + x
        assert expr.constant == 5.0
        assert expr.coeffs == {0: 1.0}

    def test_subtract(self, x, y):
        expr = x - y
        assert expr.coeffs == {0: 1.0, 1: -1.0}

    def test_rsub(self, x):
        expr = 3 - x
        assert expr.constant == 3.0
        assert expr.coeffs == {0: -1.0}

    def test_negate(self, x):
        expr = -x
        assert expr.coeffs == {0: -1.0}

    def test_scale(self, x, y):
        expr = 3 * x + y * 2
        assert expr.coeffs == {0: 3.0, 1: 2.0}

    def test_divide(self, x):
        expr = x / 4
        assert expr.coeffs == {0: 0.25}

    def test_scale_by_expression_rejected(self, x, y):
        with pytest.raises(TypeError):
            x * y  # bilinear terms are not linear

    def test_combining_expressions(self, x, y):
        a = 2 * x + 1
        b = 3 * y - 2
        combined = a + b
        assert combined.coeffs == {0: 2.0, 1: 3.0}
        assert combined.constant == -1.0

    def test_same_variable_coefficients_merge(self, x):
        expr = x + 2 * x - 0.5 * x
        assert expr.coeffs == {0: pytest.approx(2.5)}

    def test_unknown_operand_rejected(self, x):
        with pytest.raises(TypeError):
            x + "nonsense"


class TestLinExprEvaluate:
    def test_evaluate(self, x, y):
        expr = 2 * x + 3 * y + 1
        assert expr.evaluate({0: 1.0, 1: 2.0}) == pytest.approx(9.0)

    def test_drop_zeros(self, x, y):
        expr = 0 * x + 1 * y
        cleaned = expr.drop_zeros()
        assert cleaned.coeffs == {1: 1.0}

    def test_bool_raises(self, x):
        with pytest.raises(TypeError):
            bool(x + 1)


class TestLinSum:
    def test_mixed_terms(self, x, y):
        expr = lin_sum([x, y, 2, x])
        assert expr.coeffs == {0: 2.0, 1: 1.0}
        assert expr.constant == 2.0

    def test_empty(self):
        expr = lin_sum([])
        assert expr.coeffs == {}
        assert expr.constant == 0.0

    def test_generator_input(self, x):
        expr = lin_sum(2 * x for _ in range(3))
        assert expr.coeffs == {0: 6.0}

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            lin_sum(["bad"])


class TestConstraints:
    def test_le_builds_constraint(self, x, y):
        con = x + y <= 1
        assert isinstance(con, Constraint)
        assert con.sense is Sense.LE

    def test_ge(self, x):
        con = x >= 1
        assert con.sense is Sense.GE

    def test_eq(self, x, y):
        con = x == y
        assert con.sense is Sense.EQ

    def test_ne_rejected(self, x):
        with pytest.raises(TypeError):
            x != 1

    def test_satisfied_le(self, x, y):
        con = x + y <= 1
        assert con.satisfied({0: 0.0, 1: 1.0})
        assert not con.satisfied({0: 1.0, 1: 1.0})

    def test_satisfied_eq_tolerance(self, x):
        con = x == 1
        assert con.satisfied({0: 1.0 + 1e-9})
        assert not con.satisfied({0: 0.9})

    def test_satisfied_ge(self, x, y):
        con = x - y >= 0
        assert con.satisfied({0: 1.0, 1: 0.0})
        assert not con.satisfied({0: 0.0, 1: 1.0})

    def test_named(self, x):
        con = (x <= 1).named("cap")
        assert con.name == "cap"
        assert "cap" in repr(con)

    def test_constraint_against_expression(self, x, y):
        con = 2 * x <= y + 3
        # normalized: 2x - y - 3 <= 0
        assert con.expr.coeffs == {0: 2.0, 1: -1.0}
        assert con.expr.constant == -3.0
