"""Tests for topology generators, including the Table-I statistical twins."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.snn.generators import (
    TwinSpec,
    gini_degree_sequence,
    layered_network,
    random_network,
    realize_degree_sequences,
    statistical_twin,
)
from repro.snn.stats import gini_index, network_stats


class TestGiniDegreeSequence:
    def test_exact_sum(self):
        rng = np.random.default_rng(0)
        seq = gini_degree_sequence(50, 120, 0.6, rng)
        assert seq.sum() == 120

    def test_cap_respected(self):
        rng = np.random.default_rng(1)
        seq = gini_degree_sequence(40, 150, 0.7, rng, cap=8)
        assert seq.max() <= 8
        assert seq.sum() == 150

    def test_force_max_hits_cap(self):
        rng = np.random.default_rng(2)
        seq = gini_degree_sequence(60, 200, 0.65, rng, cap=11, force_max=True)
        assert seq.max() == 11

    def test_gini_target_approximate(self):
        rng = np.random.default_rng(3)
        for target in (0.3, 0.5, 0.7):
            seq = gini_degree_sequence(300, 900, target, rng)
            assert gini_index(seq) == pytest.approx(target, abs=0.08)

    def test_zero_gini_is_flat(self):
        rng = np.random.default_rng(4)
        seq = gini_degree_sequence(10, 30, 0.0, rng)
        assert seq.min() == seq.max() == 3

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gini_degree_sequence(0, 5, 0.5, rng)
        with pytest.raises(ValueError):
            gini_degree_sequence(5, -1, 0.5, rng)
        with pytest.raises(ValueError):
            gini_degree_sequence(5, 10, 1.0, rng)
        with pytest.raises(ValueError):
            gini_degree_sequence(5, 100, 0.5, rng, cap=2)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(5, 60),
        total=st.integers(0, 150),
        gini=st.floats(0.0, 0.9),
        seed=st.integers(0, 1000),
    )
    def test_property_sum_and_nonnegativity(self, n, total, gini, seed):
        rng = np.random.default_rng(seed)
        seq = gini_degree_sequence(n, total, gini, rng)
        assert seq.sum() == total
        assert (seq >= 0).all()


class TestRealizeDegreeSequences:
    def test_simple_digraph_no_self_loops(self):
        rng = np.random.default_rng(5)
        out = gini_degree_sequence(30, 80, 0.5, rng)
        inn = gini_degree_sequence(30, 80, 0.5, rng, cap=10)
        edges = realize_degree_sequences(out, inn, rng)
        assert len(edges) == 80
        assert all(pre != post for pre, post in edges)

    def test_mismatched_sums_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="sums differ"):
            realize_degree_sequences(
                np.array([1, 1]), np.array([1, 0, 0]), rng
            )

    def test_dense_skewed_sequences_still_realize(self):
        # The regime that used to defeat pure edge-swap repair.
        rng = np.random.default_rng(37)
        out = gini_degree_sequence(18, 58, 0.61, rng)
        inn = gini_degree_sequence(18, 58, 0.57, rng, cap=15, force_max=True)
        edges = realize_degree_sequences(out, inn, rng, in_cap=15)
        assert len(edges) == 58
        in_deg = np.zeros(18, dtype=int)
        for _, post in edges:
            in_deg[post] += 1
        assert in_deg.max() <= 15


class TestStatisticalTwin:
    SPEC = TwinSpec("A", 229, 464, 11, 0.6889, 0.6764)

    def test_exact_counts_full_scale(self):
        net = statistical_twin(self.SPEC, seed=1)
        st_ = network_stats(net)
        assert st_.node_count == 229
        assert st_.edge_count == 464
        assert st_.max_fan_in == 11

    def test_gini_targets_within_tolerance(self):
        net = statistical_twin(self.SPEC, seed=1)
        st_ = network_stats(net)
        assert st_.gini_incoming == pytest.approx(0.6889, abs=0.1)
        assert st_.gini_outgoing == pytest.approx(0.6764, abs=0.1)

    def test_deterministic_per_seed(self):
        a = statistical_twin(self.SPEC, seed=9)
        b = statistical_twin(self.SPEC, seed=9)
        assert list(a.synapses()) == list(b.synapses())

    def test_different_seeds_differ(self):
        a = statistical_twin(self.SPEC, seed=1)
        b = statistical_twin(self.SPEC, seed=2)
        assert list(a.synapses()) != list(b.synapses())

    def test_scaled_spec(self):
        small = self.SPEC.scaled(0.1)
        assert small.node_count == 23
        assert small.max_fan_in == 11
        net = statistical_twin(small, seed=3)
        assert net.num_neurons == small.node_count
        assert net.num_synapses == small.edge_count

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            self.SPEC.scaled(0.0)
        with pytest.raises(ValueError):
            self.SPEC.scaled(1.5)

    def test_impossible_spec_rejected(self):
        bad = TwinSpec("bad", 5, 100, 3, 0.5, 0.5)
        with pytest.raises(ValueError):
            statistical_twin(bad)

    def test_io_markers_exist(self):
        net = statistical_twin(self.SPEC, seed=1)
        assert net.input_ids()
        assert net.output_ids()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), scale=st.sampled_from([0.1, 0.2, 0.4]))
    def test_property_scaled_twins_valid(self, seed, scale):
        spec = self.SPEC.scaled(scale)
        net = statistical_twin(spec, seed=seed)
        st_ = network_stats(net)
        assert st_.node_count == spec.node_count
        assert st_.edge_count == spec.edge_count
        assert st_.max_fan_in <= spec.max_fan_in


class TestRandomNetwork:
    def test_counts(self):
        net = random_network(15, 30, seed=0)
        assert net.num_neurons == 15
        assert net.num_synapses == 30

    def test_fan_in_cap(self):
        net = random_network(15, 40, seed=0, max_fan_in=4)
        assert all(net.fan_in(i) <= 4 for i in net.neuron_ids())

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            random_network(3, 10)
        with pytest.raises(ValueError):
            random_network(10, 60, max_fan_in=2)

    def test_too_few_neurons_rejected(self):
        with pytest.raises(ValueError):
            random_network(1, 0)


class TestLayeredNetwork:
    def test_structure(self):
        net = layered_network([4, 6, 2], connection_prob=0.5, seed=1)
        assert net.num_neurons == 12
        assert len(net.input_ids()) == 4
        assert len(net.output_ids()) == 2

    def test_edges_only_between_adjacent_layers(self):
        net = layered_network([3, 3, 3], connection_prob=1.0, seed=0)
        for syn in net.synapses():
            assert syn.post - syn.pre <= 5  # within adjacent layer span
            assert (syn.pre // 3) + 1 == syn.post // 3

    def test_every_neuron_feeds_forward(self):
        net = layered_network([4, 4, 4], connection_prob=0.05, seed=2)
        for layer_start in (0, 4):
            for nid in range(layer_start, layer_start + 4):
                assert net.fan_out(nid) >= 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            layered_network([4])
        with pytest.raises(ValueError):
            layered_network([2, 2], connection_prob=0.0)
