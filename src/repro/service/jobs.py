"""Service-side job registry: states, progress events, cancellation.

A :class:`ServiceJob` is one accepted submission moving through
``queued -> running -> done | error | cancelled``.  Every state change
and per-scenario result is appended to the job's **event log**, which is
simultaneously:

- the NDJSON stream body of ``GET /jobs/<id>/stream`` (replay past
  events, then follow live ones), and
- the audit trail embedded in ``GET /jobs/<id>``.

The registry owns one :class:`threading.Condition`; stream readers block
in :meth:`JobRegistry.events_since` and are woken by whichever worker
thread appends the next event.

With a ``journal`` (a :class:`~repro.service.metrics.JsonlWriter`), the
registry is **persistent**: every event is also appended — write-behind,
so request threads never block on disk — to a JSONL journal, and a new
registry pointed at the same file replays it on construction.  Jobs that
were terminal before a restart come back exactly as they finished
(results, events, timestamps); jobs the old process accepted but never
finished come back as ``error: "daemon restarted"`` instead of silently
vanishing, so a 202-accepted id is *always* answerable.
"""

from __future__ import annotations

import itertools
import re
import secrets
import threading
import time
from dataclasses import dataclass, field

from ..batch.queue import CancelToken
from .metrics import EventObserver, JsonlWriter, read_jsonl
from .wire import TERMINAL_STATUSES, JobSpec, WireError, parse_job

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_ERROR = "error"
JOB_CANCELLED = "cancelled"
#: Terminal: the job's end-to-end deadline passed before (or while) it ran.
JOB_DEADLINE = "deadline"
#: Terminal: the daemon shed this queued job under overload.
JOB_SHED = "shed"

#: States a job never leaves (the wire module's client-visible list).
TERMINAL_STATES = TERMINAL_STATUSES

#: Bump when the journal record schema changes; stale lines are skipped.
JOURNAL_FORMAT = 1

#: The error a queued/running job surfaces with after a daemon restart.
RESTART_ERROR = "daemon restarted"

_ID_PATTERN = re.compile(r"^job-(\d+)-[0-9a-f]+$")


@dataclass
class ServiceJob:
    """One submission's full lifecycle, owned by the registry."""

    id: str
    spec: JobSpec
    token: CancelToken = field(default_factory=CancelToken)
    status: str = JOB_QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    results: list[dict] = field(default_factory=list)
    error: str | None = None
    events: list[dict] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATES

    @property
    def deadline_at(self) -> float | None:
        """Absolute end-to-end deadline (epoch seconds), if the spec set one."""
        if self.spec.deadline_ms is None:
            return None
        return self.submitted_at + self.spec.deadline_ms / 1000.0

    @property
    def ok(self) -> bool:
        return self.status == JOB_DONE and all(
            result.get("status") == "ok" for result in self.results
        )

    def summary(self) -> dict:
        """The compact view returned by ``GET /jobs``/submission replies."""
        return {
            "id": self.id,
            "status": self.status,
            "tier": self.spec.tier,
            "priority": self.spec.priority,
            "client": self.spec.client,
            "scenarios": len(self.spec.scenarios),
            "results": len(self.results),
            "submitted_at": self.submitted_at,
            "error": self.error,
            "trace": self.spec.trace,
        }

    def detail(self) -> dict:
        """The full view returned by ``GET /jobs/<id>``."""
        return {
            **self.summary(),
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "deadline_at": self.deadline_at,
            "results": list(self.results),
            "events": list(self.events),
        }


class JobRegistry:
    """Thread-safe id -> :class:`ServiceJob` map with an event feed.

    ``max_finished`` bounds how many *terminal* jobs stay queryable: a
    long-lived daemon would otherwise accumulate every result and event
    log forever.  The oldest finished jobs are evicted first; running
    and queued jobs are never evicted.  (Evaluation answers outlive the
    eviction — they live in the shared run store/result cache.)
    """

    def __init__(
        self,
        max_finished: int = 512,
        journal: JsonlWriter | None = None,
        observers: tuple[EventObserver, ...] = (),
        fail_unfinished: bool = True,
    ) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self._jobs: dict[str, ServiceJob] = {}
        self._cond = threading.Condition()
        self._counter = itertools.count(1)
        self._max_finished = max_finished
        self._observers = tuple(observers)
        self._replay_skipped = 0
        # Whether jobs the old process left unfinished replay as terminal
        # errors (single-process mode: the queue died with the process)
        # or as re-runnable queued jobs (fleet mode: the ledger still
        # owes them work and will re-dispatch them).
        self._fail_unfinished = fail_unfinished
        self.journal = journal
        if journal is not None:
            self._replay(journal.path)

    # ------------------------------------------------------------------
    def create(self, spec: JobSpec) -> ServiceJob:
        """Register a new queued job (ids are unguessable but ordered)."""
        with self._cond:
            job_id = f"job-{next(self._counter):06d}-{secrets.token_hex(3)}"
            job = ServiceJob(id=job_id, spec=spec)
            self._jobs[job_id] = job
            self._append_event(job, {"event": JOB_QUEUED, "id": job_id})
            return job

    def get(self, job_id: str) -> ServiceJob | None:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> list[ServiceJob]:
        """Registered jobs in submission order."""
        with self._cond:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        with self._cond:
            counts: dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            return counts

    # ------------------------------------------------------------------
    def start(self, job: ServiceJob) -> bool:
        """Move a queued job to running; false if a cancel won the race.

        A ``POST /jobs/<id>/cancel`` landing between the worker's pop and
        this call already moved the job to a terminal state — it must not
        be resurrected (its streams saw a terminal event and closed).
        """
        with self._cond:
            if job.finished:
                return False
            job.status = JOB_RUNNING
            job.started_at = time.time()
            self._append_event(job, {"event": JOB_RUNNING})
            return True

    def add_result(self, job: ServiceJob, result: dict) -> None:
        with self._cond:
            job.results.append(result)
            self._append_event(job, {"event": "result", **result})

    def finish(
        self,
        job: ServiceJob,
        status: str,
        error: str | None = None,
        extra: dict | None = None,
    ) -> None:
        """Move a job to a terminal state (idempotent for cancellations).

        ``extra`` merges additional keys into the terminal event — the
        shed path uses it to embed the resubmittable wire spec so a
        caller watching the stream can resubmit verbatim.
        """
        with self._cond:
            if job.finished:
                return
            job.status = status
            job.error = error
            job.finished_at = time.time()
            event: dict = {"event": status, "results": len(job.results)}
            if error is not None:
                event["error"] = error
            if extra:
                event.update(extra)
            self._append_event(job, event)
            self._evict_finished()

    def requeue(self, job: ServiceJob, reason: str) -> None:
        """Send a job back to ``queued`` after a failed fleet attempt.

        Not a terminal transition: streams stay open (they see the
        ``requeued`` event) and the job will run again when the ledger
        re-dispatches it.  No-op once the job is terminal — a cancel that
        raced the failure wins.
        """
        with self._cond:
            if job.finished:
                return
            job.status = JOB_QUEUED
            # The retry starts from scratch: partial results of the dead
            # attempt would double up against the re-run's.
            job.results = []
            job.started_at = None
            self._append_event(job, {"event": "requeued", "reason": reason})

    def adopt(self, job_id: str, spec: JobSpec) -> ServiceJob:
        """Register a queued job under an *existing* id (ledger reconcile).

        Used when the execution ledger knows a job the registry journal
        lost (evicted, or the journals were split): the client-facing
        view is rebuilt so ``GET /jobs/<id>`` answers again.  Idempotent
        for known ids.
        """
        with self._cond:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing
            job = ServiceJob(id=job_id, spec=spec)
            self._jobs[job_id] = job
            # Journaled (so the next replay knows the job) but not
            # observed: the submission belongs to a previous process's
            # counters, like replayed jobs do.
            self._append_event(
                job, {"event": JOB_QUEUED, "id": job_id}, notify_observers=False
            )
            return job

    def cancel(self, job_id: str) -> ServiceJob | None:
        """Flag a job for cancellation; queued jobs terminate right away.

        A *running* job only gets its token set here — the worker
        observes it at the next scenario/solve boundary and moves the job
        to ``cancelled`` itself (with however many results completed).
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.token.cancel()
            if job.status == JOB_QUEUED:
                job.status = JOB_CANCELLED
                job.finished_at = time.time()
                self._append_event(job, {"event": JOB_CANCELLED, "results": 0})
                self._evict_finished()
            return job

    # ------------------------------------------------------------------
    def _evict_finished(self) -> None:
        # Caller holds the condition.  The oldest-*finished* terminal
        # jobs beyond the retention cap are dropped from the map (a
        # long-running early submission that just finished outlives jobs
        # that finished before it); live references (e.g. an open
        # stream's job object) keep working off the object.
        finished = sorted(
            (job for job in self._jobs.values() if job.finished),
            key=lambda job: job.finished_at or 0.0,
        )
        for job in finished[: max(0, len(finished) - self._max_finished)]:
            del self._jobs[job.id]

    def _append_event(
        self, job: ServiceJob, event: dict, notify_observers: bool = True
    ) -> None:
        # Caller holds the condition.  The journal append is write-behind
        # (an O(1) enqueue) and observers are counter bumps / enqueues,
        # so no disk I/O happens under the condition.
        entry = {"ts": time.time(), **event}
        job.events.append(entry)
        self._cond.notify_all()
        # The record (journal + observers) carries the client id so the
        # admission controller can release quotas without re-entering
        # the registry lock; the in-memory event stream stays unchanged.
        record = {
            "format": JOURNAL_FORMAT,
            "job": job.id,
            "client": job.spec.client,
            **entry,
        }
        if event.get("event") == JOB_QUEUED:
            # The queued record carries everything needed to rebuild the
            # job on replay: the wire-format submission body.
            record["spec"] = job.spec.payload()
        if self.journal is not None:
            self.journal.append(record)
        if notify_observers:
            for observer in self._observers:
                observer(record)

    # ------------------------------------------------------------------
    @property
    def replay_skipped(self) -> int:
        """Journal records dropped during replay (torn/stale/orphaned)."""
        return self._replay_skipped

    def _replay(self, path) -> None:
        """Rebuild jobs from a journal left behind by an earlier process.

        Replayed state transitions do **not** fire observers — process
        counters describe *this* process's work — but jobs the old
        process left unfinished are surfaced as terminal errors through
        the normal event path (journaled, so a second restart sees them
        already terminal rather than re-surfacing them).
        """
        max_counter = 0
        replayed: dict[str, ServiceJob] = {}
        for record in read_jsonl(path):
            if record.get("format") != JOURNAL_FORMAT:
                self._replay_skipped += 1
                continue
            job_id = record.get("job")
            event = record.get("event")
            ts = float(record.get("ts") or 0.0)
            if not isinstance(job_id, str) or not isinstance(event, str):
                self._replay_skipped += 1
                continue
            job = replayed.get(job_id)
            if event == JOB_QUEUED:
                if job is not None:
                    continue  # duplicate queued line (shouldn't happen)
                try:
                    spec = parse_job(record.get("spec"))
                except WireError:
                    # Schema drift or a torn spec: the job cannot be
                    # rebuilt, so its whole history is dropped.
                    self._replay_skipped += 1
                    continue
                job = ServiceJob(id=job_id, spec=spec, submitted_at=ts)
                job.events.append({"ts": ts, "event": JOB_QUEUED, "id": job_id})
                replayed[job_id] = job
                match = _ID_PATTERN.match(job_id)
                if match:
                    max_counter = max(max_counter, int(match.group(1)))
                continue
            if job is None or job.finished:
                # Orphaned event (its queued line was dropped) or noise
                # after a terminal state: both are unreplayable.
                self._replay_skipped += 1
                continue
            entry = {
                key: value
                for key, value in record.items()
                if key not in ("format", "job", "client")
            }
            job.events.append(entry)
            if event == JOB_RUNNING:
                job.status = JOB_RUNNING
                job.started_at = ts
            elif event == "requeued":
                job.status = JOB_QUEUED
                job.results = []
                job.started_at = None
            elif event == "result":
                job.results.append(
                    {k: v for k, v in entry.items() if k not in ("ts", "event")}
                )
            elif event in TERMINAL_STATES:
                job.status = event
                job.error = record.get("error")
                job.finished_at = ts
                if event == JOB_CANCELLED:
                    job.token.cancel()
        with self._cond:
            self._jobs.update(replayed)
            self._counter = itertools.count(max_counter + 1)
            for job in replayed.values():
                if job.finished:
                    continue
                if not self._fail_unfinished:
                    # Fleet mode: the execution ledger still owes these
                    # jobs work and will re-dispatch them — replay them
                    # as re-runnable, not as losses.
                    if job.status == JOB_QUEUED and not job.results:
                        continue
                    job.status = JOB_QUEUED
                    job.results = []
                    job.started_at = None
                    self._append_event(
                        job,
                        {"event": "requeued", "reason": RESTART_ERROR},
                        notify_observers=False,
                    )
                    continue
                # Accepted by the old process, never finished: the queue
                # item died with that process, so the honest answer is a
                # terminal error — not a silent 404, not a zombie
                # "running" that nothing will ever advance.
                job.token.cancel()
                job.status = JOB_ERROR
                job.error = RESTART_ERROR
                job.finished_at = time.time()
                self._append_event(
                    job,
                    {
                        "event": JOB_ERROR,
                        "results": len(job.results),
                        "error": RESTART_ERROR,
                    },
                    notify_observers=False,
                )
            self._evict_finished()

    def events_since(
        self, job: ServiceJob, index: int, timeout: float = 1.0
    ) -> tuple[list[dict], int, bool]:
        """Events after ``index`` for a stream reader.

        Blocks up to ``timeout`` for fresh events; returns
        ``(new_events, next_index, drained)`` where ``drained`` means the
        job is terminal *and* everything has been delivered — the
        stream's end-of-body condition.
        """
        with self._cond:
            if len(job.events) <= index and not job.finished:
                self._cond.wait(timeout=timeout)
            new_events = job.events[index:]
            next_index = index + len(new_events)
            drained = job.finished and next_index == len(job.events)
            return new_events, next_index, drained
