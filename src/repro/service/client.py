"""Stdlib HTTP client for the mapping daemon.

A thin :mod:`urllib.request` wrapper speaking the :mod:`.wire` format —
usable from scripts, tests and the ``repro submit`` CLI without any new
dependency:

>>> client = ServiceClient("http://127.0.0.1:8100")      # doctest: +SKIP
>>> job = client.submit(scenarios=[scenario])             # doctest: +SKIP
>>> for event in client.stream(job["id"]):                # doctest: +SKIP
...     print(event["event"])
>>> done = client.wait(job["id"])                         # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from collections.abc import Iterable, Iterator

from ..batch.queue import PRIORITY_NORMAL
from ..dse.scenario import Scenario
from ..dse.store import TIER_ILP
from ..trace import TRACE_HEADER
from .wire import DEFAULT_CLIENT, TERMINAL_STATUSES, WIRE_FORMAT, JobSpec


class ServiceError(RuntimeError):
    """An HTTP-level failure, carrying the server's error body if any."""

    def __init__(
        self,
        message: str,
        status: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        #: The server's ``Retry-After`` hint in seconds (429 responses).
        self.retry_after = retry_after
        #: Seconds the client-side retry loop *would* wait next — the
        #: max of the server hint and jittered backoff — so callers can
        #: print an actionable "retry in Ns" when retries are exhausted.
        self.suggested_wait: float | None = None


class StreamInterrupted(ServiceError):
    """A job stream dropped before delivering a terminal event.

    The job itself is most likely still running (or finished) on the
    daemon — only the *watch* broke.  Callers should fall back to
    polling ``GET /jobs/<id>`` rather than assuming the job is lost.
    """


class ServiceClient:
    """One daemon endpoint: submit, poll, stream, cancel, shut down.

    ``max_retries`` opts into resilience (default 0 keeps the original
    fail-fast behavior): idempotent GETs retry on transient connection
    errors with capped exponential backoff + jitter, and ``submit``
    retries a 429 after honoring the server's ``Retry-After`` hint.
    Non-idempotent requests never retry on *connection* errors — a
    submit whose response got lost may still have been accepted.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        max_retries: int = 0,
        backoff_base: float = 0.25,
        backoff_cap: float = 5.0,
        client: str = DEFAULT_CLIENT,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Client identity, sent as ``X-Repro-Client`` on every request
        #: (the daemon's per-client quotas are keyed on it).
        self.client = client

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        """Capped exponential backoff with full jitter for ``attempt``."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2**attempt))
        return ceiling * random.random()

    def _open(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ):
        data = None
        headers = {"Accept": "application/json", **(headers or {})}
        if self.client and self.client != DEFAULT_CLIENT:
            headers["X-Repro-Client"] = self.client
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                pass
            retry_after = None
            raw_retry = exc.headers.get("Retry-After") if exc.headers else None
            if raw_retry is not None:
                try:
                    retry_after = float(raw_retry)
                except ValueError:
                    pass
            message = f"{method} {path} failed: HTTP {exc.code}"
            if detail:
                message += f" ({detail})"
            raise ServiceError(
                message, status=exc.code, retry_after=retry_after
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(f"{method} {path} failed: {exc.reason}") from None

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ) -> dict:
        retries = self.max_retries if method == "GET" else 0
        attempt = 0
        while True:
            try:
                with self._open(method, path, payload, headers) as response:
                    return json.loads(response.read().decode("utf-8"))
            except ServiceError as exc:
                # Only *connection-level* trouble retries (no status):
                # an HTTP error is the server's deliberate answer.
                if exc.status is not None or attempt >= retries:
                    raise
                time.sleep(self._backoff(attempt))
                attempt += 1

    # ------------------------------------------------------------------
    def submit(
        self,
        scenarios: Iterable[Scenario] | None = None,
        payload: dict | None = None,
        tier: str = TIER_ILP,
        time_limit: float | None = None,
        priority: str = PRIORITY_NORMAL,
        deadline_ms: int | None = None,
        trace: str | None = None,
    ) -> dict:
        """Submit scenarios (or a raw wire ``payload``); returns the 202 body.

        ``trace`` is an encoded trace context (or bare trace id) sent as
        the ``X-Repro-Trace`` header — the daemon adopts it instead of
        minting one, so a caller can stitch the job into its own trace.
        """
        if (scenarios is None) == (payload is None):
            raise ValueError("pass exactly one of scenarios= or payload=")
        if payload is None:
            assert scenarios is not None
            payload = JobSpec(
                scenarios=tuple(scenarios),
                tier=tier,
                time_limit=time_limit,
                priority=priority,
                deadline_ms=deadline_ms,
            ).payload()
        else:
            payload = {"format": WIRE_FORMAT, **payload}
        headers = {TRACE_HEADER: trace} if trace else None
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", payload, headers)
            except ServiceError as exc:
                # Backpressure is explicitly retryable — a 429 means the
                # job was NOT accepted, so resubmitting cannot duplicate
                # it.  The wait is max(server hint, jittered backoff):
                # the hint alone would hammer the server in lockstep
                # with every other 429'd client, the backoff alone would
                # retry before the server said there could be room.
                if exc.status != 429:
                    raise
                wait = max(exc.retry_after or 0.0, self._backoff(attempt))
                exc.suggested_wait = wait
                if attempt >= self.max_retries:
                    raise
                time.sleep(wait)
                attempt += 1

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def trace(self, job_id: str) -> dict:
        """The job's merged trace records (``GET /jobs/<id>/trace``)."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll_interval: float = 0.2,
    ) -> dict:
        """Poll ``GET /jobs/<id>`` until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            detail = self.job(job_id)
            if detail["status"] in TERMINAL_STATUSES:
                return detail
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {detail['status']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def stream(
        self,
        job_id: str,
        keepalives: bool = False,
        timeout: float | None = None,
    ) -> Iterator[dict]:
        """Yield the job's NDJSON events until the server ends the stream.

        ``ping`` keepalive events are filtered out unless ``keepalives``
        is true.  The generator finishes when the job does.  ``timeout``
        is a wall-clock deadline for the whole stream: the server's
        heartbeats defeat the socket's idle timeout by design, so a
        stuck job would otherwise stream pings forever.  Checked per
        received line (heartbeats bound the gap), raising
        :class:`ServiceError` once exceeded.

        A stream that breaks mid-job — the connection drops, or the body
        ends before a terminal event (any of
        :data:`~repro.service.wire.TERMINAL_STATUSES`) — raises
        :class:`StreamInterrupted`: the job is probably still
        running server-side, so callers should re-poll, not give up.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        terminal = False
        try:
            with self._open("GET", f"/jobs/{job_id}/stream") as response:
                for line in response:
                    if deadline is not None and time.monotonic() > deadline:
                        raise ServiceError(
                            f"stream of job {job_id} exceeded {timeout}s"
                        )
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line.decode("utf-8"))
                    if event.get("event") in TERMINAL_STATUSES:
                        terminal = True
                    if event.get("event") == "ping" and not keepalives:
                        continue
                    yield event
        except (OSError, ValueError, http.client.HTTPException) as exc:
            # ConnectionReset/IncompleteRead/torn JSON line: the watch
            # broke, not (necessarily) the job.
            raise StreamInterrupted(
                f"stream of job {job_id} dropped mid-job: {exc}"
            ) from None
        if not terminal:
            raise StreamInterrupted(
                f"stream of job {job_id} ended without a terminal event "
                "(daemon went away mid-job?)"
            )
