"""Integer-linear-programming substrate.

A small modeling layer (:class:`Model`, :func:`lin_sum`) plus two exact
backends: :class:`HighsBackend` (SciPy/HiGHS) and :class:`BnBBackend`
(pure-Python branch and bound with incumbent-stream recording).  Stands in
for the OR-Tools CP-SAT stack used by the paper.
"""

from .bnb_backend import BnBBackend, BnBOptions, BranchAndBoundBackend
from .dettime import DeterministicClock
from .diagnostics import IisResult, explain_infeasibility, find_iis
from .expr import Constraint, LinExpr, Sense, Variable, VarType, lin_sum
from .greedy_rounding import lp_rounding_warm_start
from .highs_backend import HighsBackend, HighsOptions, solve_with_trace
from .model import CODE_SENSES, SENSE_CODES, MatrixForm, Model, ObjectiveSense, RowSystem
from .presolve import (
    InfeasibleModelError,
    PresolveReport,
    extend_solution,
    presolve,
)
from .result import Incumbent, SolveResult, SolveStatus
from .solve import BACKEND_NAMES, SolverSpec, solve_model

__all__ = [
    "BACKEND_NAMES",
    "CODE_SENSES",
    "SENSE_CODES",
    "RowSystem",
    "BnBBackend",
    "BnBOptions",
    "BranchAndBoundBackend",
    "Constraint",
    "DeterministicClock",
    "IisResult",
    "explain_infeasibility",
    "find_iis",
    "HighsBackend",
    "HighsOptions",
    "Incumbent",
    "InfeasibleModelError",
    "PresolveReport",
    "extend_solution",
    "presolve",
    "LinExpr",
    "MatrixForm",
    "Model",
    "ObjectiveSense",
    "Sense",
    "SolveResult",
    "SolveStatus",
    "SolverSpec",
    "solve_model",
    "Variable",
    "VarType",
    "lin_sum",
    "lp_rounding_warm_start",
    "solve_with_trace",
]
