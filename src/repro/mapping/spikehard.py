"""SpikeHard baseline (Clair et al. [24]) — MCC bin-packing.

SpikeHard's ILP does not place neurons directly.  It groups them into
Minimally Connected Components (MCCs) derived from an *a-priori valid
solution*, then bin-packs MCCs by their aggregate dimension requirements.
We reproduce it faithfully, including its two documented limitations:

1. **Initial-solution dependence**: MCCs are the weakly connected
   components of each initial crossbar's induced subgraph.
2. **Axon double-counting** (paper Fig. 1): an MCC's input requirement is
   its distinct-predecessor count, but when several MCCs share a crossbar
   their requirements are *summed* — a shared axon is counted once per
   MCC rather than once per crossbar.  Solutions remain valid (the true
   axon demand is never larger) but are provably area-pessimistic.

:func:`iterate_spikehard` re-applies the packer with successively larger
MCCs (each output crossbar's whole neuron set becomes one MCC) until the
area converges — the protocol the paper used for Fig. 2's baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..ilp.expr import Variable, lin_sum
from ..ilp.highs_backend import HighsBackend, HighsOptions
from ..ilp.model import Model
from ..ilp.result import SolveResult, SolveStatus
from .greedy import greedy_first_fit
from .problem import MappingProblem
from .solution import Mapping


@dataclass(frozen=True)
class MCC:
    """A Minimally Connected Component with aggregate dimensions."""

    neurons: frozenset[int]
    outputs: int  # bit-lines needed = neuron count
    inputs: int  # word-lines claimed = distinct predecessors (pre-sharing)

    def __post_init__(self) -> None:
        if not self.neurons:
            raise ValueError("an MCC must contain at least one neuron")


def make_mcc(problem: MappingProblem, neurons: frozenset[int]) -> MCC:
    """Build an MCC with SpikeHard's aggregate dimension accounting."""
    return MCC(
        neurons=neurons,
        outputs=len(neurons),
        inputs=problem.axon_demand(neurons),
    )


def form_mccs(problem: MappingProblem, initial: Mapping) -> list[MCC]:
    """MCCs = weakly connected components within each initial crossbar."""
    graph = problem.network.to_networkx()
    mccs: list[MCC] = []
    for j in initial.enabled_slots():
        members = initial.neurons_on(j)
        sub = graph.subgraph(members)
        for component in nx.weakly_connected_components(sub):
            mccs.append(make_mcc(problem, frozenset(component)))
    return sorted(mccs, key=lambda m: sorted(m.neurons))


def singleton_mccs(problem: MappingProblem) -> list[MCC]:
    """One MCC per neuron — the degenerate case the paper calls
    'disastrous for optimization' (every axon counted at every consumer)."""
    return [
        make_mcc(problem, frozenset([i])) for i in problem.network.neuron_ids()
    ]


@dataclass
class SpikeHardResult:
    """Outcome of one bin-packing solve (or an iterated sequence)."""

    mapping: Mapping
    solve_result: SolveResult
    mccs: list[MCC]
    iterations: int = 1
    det_time: float = 0.0
    area_history: list[float] = field(default_factory=list)


class SpikeHardPacker:
    """The MCC bin-packing ILP."""

    def __init__(
        self,
        problem: MappingProblem,
        solver_options: HighsOptions | None = None,
        symmetry_breaking: bool = True,
    ) -> None:
        self.problem = problem
        self.solver_options = solver_options or HighsOptions()
        self.symmetry_breaking = symmetry_breaking

    def build_model(self, mccs: list[MCC]) -> tuple[Model, dict, dict]:
        """Bin-packing ILP: z[m, j] assigns MCC m to slot j.

        Capacity rows use the MCCs' aggregate dimensions — deliberately
        reproducing the double-counted axon arithmetic of Fig. 1.
        """
        arch = self.problem.architecture
        model = Model("spikehard")
        slots = range(arch.num_slots)
        z: dict[tuple[int, int], Variable] = {}
        y: dict[int, Variable] = {}
        for j in slots:
            y[j] = model.add_binary(f"y_{j}")
        for m in range(len(mccs)):
            for j in slots:
                z[(m, j)] = model.add_binary(f"z_{m}_{j}")
        for m in range(len(mccs)):
            model.add(
                lin_sum(z[(m, j)] for j in slots) == 1, name=f"place_{m}"
            )
        for j in slots:
            slot = arch.slot(j)
            model.add(
                lin_sum(mccs[m].outputs * z[(m, j)] for m in range(len(mccs)))
                <= slot.outputs * y[j],
                name=f"outputs_{j}",
            )
            # The SpikeHard flaw lives here: summed per-MCC input demands.
            model.add(
                lin_sum(mccs[m].inputs * z[(m, j)] for m in range(len(mccs)))
                <= slot.inputs * y[j],
                name=f"inputs_{j}",
            )
        if self.symmetry_breaking:
            for group in arch.identical_slot_groups():
                for a, b in zip(group, group[1:]):
                    model.add(y[a] >= y[b], name=f"sym_{a}_{b}")
        model.minimize(
            lin_sum(arch.slot(j).area * y[j] for j in slots)
        )
        return model, z, y

    def pack(self, mccs: list[MCC]) -> SpikeHardResult:
        """Solve the bin-packing and expand MCC placements to neurons."""
        model, z, _ = self.build_model(mccs)
        result = HighsBackend(self.solver_options).solve(model)
        if not result.status.has_solution():
            raise RuntimeError(
                f"SpikeHard packing found no solution (status {result.status}); "
                "the MCCs may not fit any slot or the pool is too small"
            )
        assignment: dict[int, int] = {}
        for (m, j), var in z.items():
            if result.value(var.name) > 0.5:
                for neuron in mccs[m].neurons:
                    assignment[neuron] = j
        mapping = Mapping(self.problem, assignment)
        issues = mapping.validate()
        if issues:  # double-counting over-estimates, so this cannot trip
            raise AssertionError(f"SpikeHard mapping invalid: {issues[:3]}")
        return SpikeHardResult(
            mapping=mapping,
            solve_result=result,
            mccs=mccs,
            det_time=result.det_time,
            area_history=[mapping.area()],
        )


def iterate_spikehard(
    problem: MappingProblem,
    initial: Mapping | None = None,
    solver_options: HighsOptions | None = None,
    max_iterations: int = 10,
) -> SpikeHardResult:
    """Apply SpikeHard repeatedly until area convergence (paper §V-D).

    Each round's output crossbars become the next round's (larger) MCCs,
    which is the only mechanism SpikeHard has for recovering axon sharing.
    """
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    if initial is None:
        initial = greedy_first_fit(problem)
    packer = SpikeHardPacker(problem, solver_options)

    mccs = form_mccs(problem, initial)
    best: SpikeHardResult | None = None
    history: list[float] = []
    det_total = 0.0
    for iteration in range(1, max_iterations + 1):
        result = packer.pack(mccs)
        det_total += result.det_time
        area = result.mapping.area()
        history.append(area)
        if best is None or area < best.mapping.area() - 1e-9:
            best = result
            best.iterations = iteration
        else:
            break  # converged: merging crossbars no longer helps
        # Successively larger MCCs: whole crossbars of the new solution.
        mccs = [
            make_mcc(problem, result.mapping.neurons_on(j))
            for j in result.mapping.enabled_slots()
        ]
    assert best is not None
    best.det_time = det_total
    best.area_history = history
    return best
