"""Crossbar types and instances.

A crossbar type is the ``(inputs, outputs)`` dimension pair the ILP sees as
``(A_j, N_j)``: word-lines (axonal inputs) by bit-lines (neuron outputs).
Area defaults to the memristor count ``inputs * outputs`` — the paper's
Section V-D convention ("we only consider memristor count") — with an
optional per-type overhead factor standing in for peripheral hardware
(the ``C_j`` of objective 8).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class CrossbarType:
    """A crossbar dimension: ``inputs`` word-lines x ``outputs`` bit-lines."""

    inputs: int
    outputs: int
    overhead: float = 1.0  # multiplicative area overhead (C_j = overhead * In*Out)

    def __post_init__(self) -> None:
        if self.inputs < 1 or self.outputs < 1:
            raise ValueError("crossbar dimensions must be positive")
        if self.overhead <= 0:
            raise ValueError("overhead factor must be positive")

    @property
    def memristors(self) -> int:
        """Raw device count of the array."""
        return self.inputs * self.outputs

    @property
    def area(self) -> float:
        """Area cost ``C_j`` used by the area objective."""
        return self.overhead * self.memristors

    @property
    def label(self) -> str:
        """Human-readable ``InxOut`` dimension label (paper Fig. 3 style)."""
        return f"{self.inputs}x{self.outputs}"

    def fits(self, num_outputs: int, num_inputs: int) -> bool:
        """Can this type host ``num_outputs`` neurons with ``num_inputs`` axons?"""
        return num_outputs <= self.outputs and num_inputs <= self.inputs

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class CrossbarSlot:
    """One concrete crossbar position ``j`` in an architecture's pool."""

    index: int
    ctype: CrossbarType

    @property
    def inputs(self) -> int:
        """``A_j``: available axonal input lines."""
        return self.ctype.inputs

    @property
    def outputs(self) -> int:
        """``N_j``: available neuron output lines."""
        return self.ctype.outputs

    @property
    def area(self) -> float:
        """``C_j``: area cost if this slot is enabled."""
        return self.ctype.area

    def __str__(self) -> str:
        return f"xbar[{self.index}]:{self.ctype.label}"
