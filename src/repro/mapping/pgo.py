"""Profile-Guided Optimization for runtime packets (Section IV-D).

PGO is the weighted variant of the SNU formulation: each route from source
``k`` costs its profiled spike count ``W[k]`` instead of 1, so the solver
minimizes *anticipated chip-router traffic* (objective 12):

    min  sum_{i,j}  s[i,j] * W_i  -  b[i,j] * W_i

Sources that never fired in the profile contribute nothing and are
eliminated from the objective (and need no ``b`` variables), which is why
the paper observes 1-3 orders of magnitude lower solver time than SNU.

Model construction is fully columnar: the weighted objective and the
hot-source-only linearization rows are emitted by
:class:`~repro.mapping.snu.RouteModel` as
:meth:`~repro.ilp.model.Model.add_block` families over index arrays, so
PGO's *build* time shrinks with its objective support exactly as its
solve time does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping as MappingT

from .problem import MappingProblem
from .snu import RouteModel, RouteModelOptions, RouteObjective
from .solution import Mapping


@dataclass(frozen=True)
class SpikeProfile:
    """Per-neuron spike counts gathered from profiling runs (``W[i]``)."""

    counts: dict[int, int]
    duration: int = 0  # total profiled timesteps (bookkeeping only)
    num_samples: int = 0

    def __post_init__(self) -> None:
        for nid, count in self.counts.items():
            if count < 0:
                raise ValueError(f"neuron {nid} has negative spike count")

    @property
    def total_spikes(self) -> int:
        return sum(self.counts.values())

    def active_fraction(self) -> float:
        """Share of profiled neurons that fired at least once."""
        if not self.counts:
            return 0.0
        active = sum(1 for c in self.counts.values() if c > 0)
        return active / len(self.counts)

    def hot_sources(self, problem: MappingProblem) -> list[int]:
        """Sources with nonzero profile weight — the PGO objective support."""
        return [k for k in problem.sources() if self.counts.get(k, 0) > 0]


def build_pgo_model(
    problem: MappingProblem,
    base_mapping: Mapping,
    profile: SpikeProfile | MappingT[int, int],
    options: RouteModelOptions | None = None,
) -> RouteModel:
    """PGO post-optimization over ``base_mapping``'s enabled crossbars.

    Accepts either a :class:`SpikeProfile` or a raw neuron->count mapping.
    The enabled-crossbar set and area budget are frozen exactly as in SNU,
    so packet gains never cost area.
    """
    counts = profile.counts if isinstance(profile, SpikeProfile) else dict(profile)
    opts = options or RouteModelOptions(objective=RouteObjective.GLOBAL)
    if opts.area_budget is None:
        opts = replace(opts, area_budget=base_mapping.area())
    return RouteModel(
        problem,
        base_mapping.enabled_slots(),
        opts,
        weights=counts,
    )


def expected_global_packets(
    mapping: Mapping, profile: SpikeProfile | MappingT[int, int]
) -> int:
    """Objective-12 value of a mapping under a profile (global packets)."""
    counts = profile.counts if isinstance(profile, SpikeProfile) else profile
    _, global_ = mapping.packet_count(counts)
    return global_
