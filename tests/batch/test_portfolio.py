"""Solver-portfolio semantics: winner selection, determinism, racing."""

from __future__ import annotations

import pickle

import pytest

from repro.batch.portfolio import (
    ACCELERATED_SPECS,
    PortfolioOptions,
    PortfolioSolver,
    portfolio_solver_factory,
    winning_arm,
)
from repro.ilp.model import Model
from repro.ilp.result import SolveStatus
from repro.ilp.solve import SolverSpec
from repro.ilp.expr import lin_sum
from repro.mapping.axon_sharing import AreaModel
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import custom_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network

pytestmark = pytest.mark.batch


def _area_instance():
    net = random_network(10, 20, seed=18, max_fan_in=5)
    arch = custom_architecture([(CrossbarType(4, 4), 4), (CrossbarType(8, 8), 2)])
    problem = MappingProblem(net, arch)
    handle = AreaModel(problem)
    warm = handle.warm_start_from(greedy_first_fit(problem))
    return handle, warm


class TestWinnerSelection:
    def test_picks_the_better_incumbent(self):
        """A crippled B&B (0 nodes = warm start only) must lose to HiGHS."""
        handle, warm = _area_instance()
        crippled = PortfolioSolver(
            PortfolioOptions(
                specs=(
                    SolverSpec("bnb", node_limit=0),
                    SolverSpec("highs", time_limit=5.0),
                ),
                stop_on_optimal=False,
            )
        )
        result = crippled.solve(handle.model, warm_start=warm)
        alone = SolverSpec("highs", time_limit=5.0).build().solve(
            handle.model, warm_start=warm
        )
        assert result.objective == pytest.approx(alone.objective)
        assert "highs" in result.backend
        assert result.backend.startswith("portfolio[")

    def test_det_time_charges_every_member(self):
        handle, warm = _area_instance()
        solver = PortfolioSolver(
            PortfolioOptions(
                specs=(
                    SolverSpec("highs", time_limit=5.0),
                    SolverSpec("bnb", node_limit=50),
                ),
                stop_on_optimal=False,
            )
        )
        result = solver.solve(handle.model, warm_start=warm)
        alone = SolverSpec("highs", time_limit=5.0).build().solve(
            handle.model, warm_start=warm
        )
        assert result.det_time > alone.det_time

    def test_stop_on_optimal_skips_remaining_members(self):
        handle, warm = _area_instance()
        solver = PortfolioSolver(
            PortfolioOptions(
                specs=(
                    SolverSpec("highs", time_limit=5.0),
                    SolverSpec("bnb", node_limit=50),
                ),
                stop_on_optimal=True,
            )
        )
        result = solver.solve(handle.model, warm_start=warm)
        alone = SolverSpec("highs", time_limit=5.0).build().solve(
            handle.model, warm_start=warm
        )
        if alone.status is SolveStatus.OPTIMAL:
            # B&B never ran, so no extra deterministic effort was charged.
            assert result.det_time == pytest.approx(alone.det_time)

    def test_sequential_solve_is_deterministic(self):
        handle, warm = _area_instance()
        factory = portfolio_solver_factory()
        first = factory(5.0).solve(handle.model, warm_start=warm)
        second = factory(5.0).solve(handle.model, warm_start=warm)
        assert first.objective == pytest.approx(second.objective)
        assert first.backend == second.backend

    def test_maximize_models_pick_the_larger_objective(self):
        """Winner selection must honor the objective sense."""
        model = Model("maximize")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add(lin_sum([x, y]) <= 2, name="cap")
        model.maximize(lin_sum([x, y]))
        warm = {"x": 1.0, "y": 0.0}  # objective 1; the optimum is 2
        solver = PortfolioSolver(
            PortfolioOptions(
                specs=(
                    SolverSpec("bnb", node_limit=0),  # stuck at the warm start
                    SolverSpec("highs", time_limit=5.0),
                ),
                stop_on_optimal=False,
            )
        )
        result = solver.solve(model, warm_start=warm)
        assert result.objective == pytest.approx(2.0)
        assert "highs" in result.backend

    def test_infeasible_model_reports_conclusively(self):
        model = Model("infeasible")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add(lin_sum([x, y]) >= 3, name="impossible")
        model.minimize(lin_sum([x, y]))
        result = PortfolioSolver().solve(model)
        assert result.status is SolveStatus.INFEASIBLE


class TestThreadRace:
    def test_threads_mode_matches_sequential_winner(self):
        handle, warm = _area_instance()
        sequential = PortfolioSolver(
            PortfolioOptions(stop_on_optimal=False)
        ).solve(handle.model, warm_start=warm)
        threaded = PortfolioSolver(
            PortfolioOptions(race="threads")
        ).solve(handle.model, warm_start=warm)
        assert threaded.objective == pytest.approx(sequential.objective)
        assert threaded.status.has_solution()


class TestWinningArm:
    @pytest.mark.parametrize(
        ("backend", "arm"),
        [
            ("portfolio[highs]", "highs"),
            ("portfolio[bnb]", "bnb"),
            ("portfolio[bnb-interrupted]", "bnb"),
            ("highs", None),
            ("bnb-interrupted", None),
            ("portfolio[", None),  # malformed tag, not a race winner
            ("", None),
        ],
    )
    def test_parses_backend_tags(self, backend, arm):
        assert winning_arm(backend) == arm


class TestOnRaceHook:
    def test_hook_sees_winner_and_every_member(self):
        handle, warm = _area_instance()
        races: list = []
        solver = PortfolioSolver(PortfolioOptions(stop_on_optimal=False))
        solver.on_race = lambda winner, results: races.append((winner, results))
        returned = solver.solve(handle.model, warm_start=warm)
        assert len(races) == 1
        winner, results = races[0]
        assert winner is returned
        assert len(results) == len(solver.options.specs)
        # The hook fires after finalization: the tag is already portfolio[...].
        assert winning_arm(winner.backend) is not None

    def test_hook_defaults_to_none(self):
        assert PortfolioSolver().on_race is None


class TestIncumbentSharing:
    def _race(self, share: bool):
        handle, warm = _area_instance()
        solver = PortfolioSolver(
            PortfolioOptions(
                specs=(
                    SolverSpec("highs", time_limit=5.0),
                    # Crippled arm: 0 nodes = it can only echo its seed.
                    SolverSpec("bnb", node_limit=0),
                ),
                stop_on_optimal=False,
                share_incumbents=share,
            )
        )
        races: list = []
        solver.on_race = lambda winner, results: races.append(results)
        solver.solve(handle.model, warm_start=warm)
        seed_objective = handle.model.objective_of(
            handle.model.dense_values(warm)
        )
        return races[0], seed_objective

    def test_earlier_arms_donate_their_incumbent(self):
        results, _ = self._race(share=True)
        # The crippled arm received the first arm's solution as its warm
        # start and echoes it back — donation reached the next member.
        assert results[1].objective == pytest.approx(results[0].objective)

    def test_sharing_disabled_keeps_the_original_seed(self):
        results, seed_objective = self._race(share=False)
        assert results[1].objective == pytest.approx(seed_objective)

    def test_accelerated_specs_lead_with_the_heuristic_arm(self):
        assert ACCELERATED_SPECS[0].backend == "lp_round"
        assert ACCELERATED_SPECS[-1].backend == "highs"
        handle, warm = _area_instance()
        result = PortfolioSolver(
            PortfolioOptions(specs=ACCELERATED_SPECS)
        ).solve(handle.model, warm_start=warm)
        assert result.status.has_solution()
        assert result.backend.startswith("portfolio[")
        seed_objective = handle.model.objective_of(
            handle.model.dense_values(warm)
        )
        assert result.objective <= seed_objective + 1e-9


class TestSolverSpecKnobs:
    def test_emphasis_maps_to_a_gap(self):
        assert SolverSpec("highs", emphasis="speed").effective_gap() == (
            pytest.approx(0.05)
        )
        assert SolverSpec("highs", emphasis="quality").effective_gap() == 0.0
        assert SolverSpec("highs").effective_gap() is None
        assert SolverSpec("highs").effective_gap(0.01) == pytest.approx(0.01)

    def test_explicit_gap_beats_emphasis(self):
        spec = SolverSpec("highs", mip_rel_gap=0.2, emphasis="speed")
        assert spec.effective_gap() == pytest.approx(0.2)

    def test_unknown_emphasis_rejected(self):
        with pytest.raises(ValueError, match="emphasis"):
            SolverSpec("highs", emphasis="ludicrous")

    def test_lp_round_spec_builds_its_backend(self):
        from repro.ilp.lp_round import LpRoundBackend

        backend = SolverSpec("lp_round", time_limit=2.0).build()
        assert isinstance(backend, LpRoundBackend)
        assert backend.options.time_limit == pytest.approx(2.0)


class TestOptionsValidation:
    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PortfolioOptions(specs=())

    def test_unknown_race_mode_rejected(self):
        with pytest.raises(ValueError, match="race mode"):
            PortfolioOptions(race="carrier-pigeon")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SolverSpec("cplex")

    def test_specs_and_results_pickle(self):
        """The pool ships specs out and results back; both must pickle."""
        handle, warm = _area_instance()
        spec = SolverSpec("highs", time_limit=5.0)
        assert pickle.loads(pickle.dumps(spec)) == spec
        result = spec.build().solve(handle.model, warm_start=warm)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.objective == result.objective
        assert clone.status is result.status
