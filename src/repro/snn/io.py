"""Network serialization (TENNLab-flavoured JSON).

The on-disk format mirrors the TENNLab network JSON layout closely enough
to feel familiar: a ``Nodes`` array with per-neuron parameters and an
``Edges`` array with ``from``/``to``/``weight``/``delay``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .network import Network

FORMAT_VERSION = 1


def network_to_dict(network: Network) -> dict[str, Any]:
    """Serialize to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": network.name,
        "nodes": [
            {
                "id": n.id,
                "threshold": n.threshold,
                "leak": n.leak,
                "input": n.is_input,
                "output": n.is_output,
            }
            for n in network.neurons()
        ],
        "edges": [
            {
                "from": s.pre,
                "to": s.post,
                "weight": s.weight,
                "delay": s.delay,
            }
            for s in network.synapses()
        ],
    }


def network_from_dict(data: dict[str, Any]) -> Network:
    """Deserialize a dict produced by :func:`network_to_dict`."""
    version = data.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported network format version {version}")
    net = Network(data.get("name", "network"))
    for node in data["nodes"]:
        net.add_neuron(
            node["id"],
            threshold=node.get("threshold", 1.0),
            leak=node.get("leak", 1.0),
            is_input=node.get("input", False),
            is_output=node.get("output", False),
        )
    for edge in data["edges"]:
        net.add_synapse(
            edge["from"],
            edge["to"],
            weight=edge.get("weight", 1.0),
            delay=edge.get("delay", 1),
        )
    return net


def save_network(network: Network, path: str | Path) -> None:
    """Write a network to a JSON file."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2))


def load_network(path: str | Path) -> Network:
    """Read a network from a JSON file."""
    return network_from_dict(json.loads(Path(path).read_text()))
