"""Table II bench: regenerate the crossbar dimension set."""

from bench_config import SMALL, once
from repro.experiments.table2 import run_table2
from repro.mca.architecture import table_ii_types


def test_benchmark_table2(benchmark):
    report = once(benchmark, lambda: run_table2(SMALL))
    labels = {t.label for t in table_ii_types()}
    # The exact Table II dimension set.
    assert labels == {
        "4x4", "8x4", "16x4", "32x4",
        "8x8", "16x8", "32x8",
        "16x16", "32x16",
        "32x32",
    }
    for label in labels:
        assert label in report
