"""Fleet chaos tests: the multi-process fleet under crashes and overload.

The contract being tested, end to end: a submitted job is *owed* a
terminal answer.  Workers may raise, stall, or be SIGKILLed mid-solve;
the daemon may stop and a new one may adopt the same ledger — the job
still finishes (or dead-letters with a diagnosable error), and the
results match what a direct single-process run produces.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.batch.cache import ResultCache
from repro.batch.queue import QueueFull
from repro.dse.explorer import Explorer
from repro.dse.scenario import (
    ArchitectureSpec,
    FormulationSpec,
    Scenario,
    WorkloadSpec,
)
from repro.dse.store import RunStore
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import MappingService, make_server
from repro.service.jobs import JOB_DONE, JOB_ERROR, JOB_QUEUED
from repro.service.ledger import (
    LEASE_DEAD_LETTER,
    LEASE_FINISHED,
    LEASE_PENDING,
    JobLedger,
)
from repro.service.wire import JobSpec, result_payload
from repro.service.worker import FleetConfig, worker_main

pytestmark = pytest.mark.service

CHAOS = str(Path(__file__).resolve().parent / "chaos.py")

#: The deterministic slice of a result payload: solver outputs, not
#: timings.  ``wall_time``/``solves``/``cached`` legitimately differ
#: between a fleet run and a direct run; the *answer* must not.
DETERMINISTIC_FIELDS = (
    "scenario",
    "fingerprint",
    "tier",
    "status",
    "objectives",
    "assignment",
    "error",
)


def _scenario(dimension: int = 12) -> Scenario:
    return Scenario(
        architecture=ArchitectureSpec(kind="homogeneous", dimension=dimension),
        workload=WorkloadSpec(network="C", scale=0.1, profile="uniform"),
        formulation=FormulationSpec(stages=("area",)),
    )


def _spec(*scenarios: Scenario) -> JobSpec:
    return JobSpec(scenarios=tuple(scenarios), tier="ilp", time_limit=5.0)


def _fleet_config(tmp_path: Path, **overrides) -> FleetConfig:
    settings = dict(
        store_path=str(tmp_path / "store"),
        store_shards=4,
        cache_dir=str(tmp_path / "cache"),
        time_limit=5.0,
        lease_ttl=5.0,
        heartbeat_interval=0.2,
        max_attempts=3,
        backoff_base=0.05,
        backoff_cap=0.2,
        drain_timeout=15.0,
    )
    settings.update(overrides)
    return FleetConfig(**settings)


def _service(tmp_path: Path, fleet: int, config: FleetConfig, **kwargs):
    explorer = Explorer(
        store=RunStore(tmp_path / "store", shards=4), cache=ResultCache()
    )
    return MappingService(
        explorer,
        fleet=fleet,
        ledger_path=tmp_path / "ledger.jsonl",
        journal_path=tmp_path / "journal.jsonl",
        fleet_config=config,
        **kwargs,
    )


def _wait_finished(service: MappingService, job_id: str, timeout: float = 90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = service.registry.get(job_id)
        if job is not None and job.finished:
            return job
        time.sleep(0.05)
    pytest.fail(f"job {job_id} still unfinished after {timeout}s")


def _direct_payloads(*scenarios: Scenario) -> list[dict]:
    """The single-process ground truth for the same scenarios."""
    explorer = Explorer(time_limit=5.0)
    return [
        result_payload(result)
        for result in explorer.evaluate_ilp(list(scenarios), time_limit=5.0)
    ]


def _deterministic(payload: dict) -> dict:
    return {field: payload[field] for field in DETERMINISTIC_FIELDS}


# ----------------------------------------------------------------------
class TestWorkerMain:
    """The worker entry point, run in-process for direct inspection."""

    def test_solves_and_reports_results(self, tmp_path):
        config = FleetConfig(store_path=str(tmp_path / "store"), store_shards=2)
        tasks: queue.Queue = queue.Queue()
        results: queue.Queue = queue.Queue()
        tasks.put({"job": "job-1", "spec": _spec(_scenario()).payload()})
        tasks.put(None)
        worker_main(0, config, tasks, results, threading.Event())

        messages = []
        while not results.empty():
            messages.append(results.get_nowait())
        kinds = [message["type"] for message in messages]
        assert kinds[0] == "ready"
        assert messages[0]["pid"] == os.getpid()
        assert "started" in kinds
        result = next(m for m in messages if m["type"] == "result")
        assert result["job"] == "job-1"
        assert result["cancelled"] is False
        assert [r["status"] for r in result["results"]] == ["ok"]

    def test_unrunnable_spec_reports_failure(self, tmp_path):
        config = FleetConfig()
        tasks: queue.Queue = queue.Queue()
        results: queue.Queue = queue.Queue()
        tasks.put({"job": "job-bad", "spec": {"format": 999}})
        tasks.put(None)
        worker_main(1, config, tasks, results, threading.Event())

        messages = []
        while not results.empty():
            messages.append(results.get_nowait())
        failed = next(m for m in messages if m["type"] == "failed")
        assert failed["job"] == "job-bad"
        assert "unrunnable task" in failed["error"]

    def test_cancel_event_marks_results_cancelled(self, tmp_path):
        config = FleetConfig(store_path=str(tmp_path / "store"), store_shards=2)
        tasks: queue.Queue = queue.Queue()
        results: queue.Queue = queue.Queue()
        cancel = threading.Event()
        cancel.set()  # cancelled before the solve ever starts
        tasks.put({"job": "job-c", "spec": _spec(_scenario()).payload()})
        tasks.put(None)
        worker_main(0, config, tasks, results, cancel)

        messages = []
        while not results.empty():
            messages.append(results.get_nowait())
        result = next(m for m in messages if m["type"] == "result")
        assert result["cancelled"] is True


# ----------------------------------------------------------------------
class TestFleetEndToEnd:
    def test_fleet_results_match_direct_run(self, tmp_path):
        first, second = _scenario(dimension=12), _scenario(dimension=10)
        service = _service(tmp_path, fleet=2, config=_fleet_config(tmp_path))
        try:
            service.start()
            job_a = service.submit(_spec(first))
            job_b = service.submit(_spec(second))
            done_a = _wait_finished(service, job_a.id)
            done_b = _wait_finished(service, job_b.id)
            assert done_a.status == JOB_DONE
            assert done_b.status == JOB_DONE

            fleet_payloads = [done_a.results[0], done_b.results[0]]
            direct = _direct_payloads(first, second)
            assert [_deterministic(p) for p in fleet_payloads] == [
                _deterministic(p) for p in direct
            ]

            stats = service.stats()
            assert stats["fleet"]["size"] == 2
            assert len(stats["fleet"]["workers"]) == 2
            assert all(w["pid"] for w in stats["fleet"]["workers"])
            assert stats["ledger"]["by_state"][LEASE_FINISHED] == 2
            metrics = service.metrics_payload()
            assert metrics["ledger"]["leases_granted"] >= 2
            assert metrics["jobs"]["finished"]["done"] == 2
        finally:
            service.stop(wait=True)

    def test_shared_store_resumes_across_workers(self, tmp_path):
        scenario = _scenario()
        service = _service(tmp_path, fleet=1, config=_fleet_config(tmp_path))
        try:
            service.start()
            first = _wait_finished(service, service.submit(_spec(scenario)).id)
            second = _wait_finished(service, service.submit(_spec(scenario)).id)
            assert first.status == JOB_DONE
            assert second.status == JOB_DONE
            # The repeat is a zero-solve store hit inside the worker.
            assert second.results[0]["cached"] is True
            assert _deterministic(first.results[0]) == _deterministic(
                second.results[0]
            )
        finally:
            service.stop(wait=True)


# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_transient_fault_retries_then_succeeds(self, tmp_path):
        config = _fleet_config(
            tmp_path,
            mapper_factory=f"{CHAOS}:flaky_mapper",
            mapper_kwargs=(
                ("attempts_dir", str(tmp_path / "attempts")),
                ("fail_first", 1),
                ("key", "transient"),
            ),
        )
        service = _service(tmp_path, fleet=1, config=config)
        try:
            service.start()
            job = _wait_finished(service, service.submit(_spec(_scenario())).id)
            assert job.status == JOB_DONE
            assert job.results[0]["status"] == "ok"
            lease = service.ledger.get(job.id)
            assert lease.attempts == 2
            counts = service.ledger.counts()
            assert counts["requeues"] >= 1
            assert service.metrics.snapshot()["counters"]["jobs_requeued"] >= 1
        finally:
            service.stop(wait=True)

    def test_dead_letter_after_exhausted_attempts(self, tmp_path):
        config = _fleet_config(
            tmp_path,
            max_attempts=2,
            mapper_factory=f"{CHAOS}:flaky_mapper",
            mapper_kwargs=(
                ("attempts_dir", str(tmp_path / "attempts")),
                ("fail_first", 99),
                ("key", "doomed"),
            ),
        )
        service = _service(tmp_path, fleet=1, config=config)
        try:
            service.start()
            job = _wait_finished(service, service.submit(_spec(_scenario())).id)
            assert job.status == JOB_ERROR
            assert "dead-letter after 2 attempt(s)" in job.error
            assert service.ledger.get(job.id).state == LEASE_DEAD_LETTER
            assert service.ledger.counts()["dead_letters"] == 1
        finally:
            service.stop(wait=True)

    def test_sigkill_mid_solve_requeues_and_finishes(self, tmp_path):
        config = _fleet_config(
            tmp_path,
            mapper_factory=f"{CHAOS}:stalling_mapper",
            mapper_kwargs=(
                ("attempts_dir", str(tmp_path / "attempts")),
                ("fail_first", 1),
                ("key", "stall"),
                ("delay", 60.0),
            ),
        )
        scenario = _scenario()
        service = _service(tmp_path, fleet=1, config=config)
        try:
            service.start()
            job_id = service.submit(_spec(scenario)).id

            # Wait until the worker is visibly mid-solve, then kill -9.
            pid = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                workers = service.supervisor.snapshot()["workers"]
                busy = [w for w in workers if w["job"] == job_id and w["pid"]]
                if busy:
                    pid = busy[0]["pid"]
                    break
                time.sleep(0.05)
            assert pid is not None, "worker never picked the job up"
            os.kill(pid, signal.SIGKILL)

            job = _wait_finished(service, job_id)
            assert job.status == JOB_DONE
            assert service.supervisor.snapshot()["worker_restarts"] >= 1
            lease = service.ledger.get(job_id)
            assert lease.attempts == 2  # the killed attempt burned one
            # The answer survived the murder of its first solver.
            assert _deterministic(job.results[0]) == _deterministic(
                _direct_payloads(scenario)[0]
            )
        finally:
            service.stop(wait=True)


# ----------------------------------------------------------------------
class TestRestartAndDrain:
    def test_restart_on_same_ledger_resolves_pre_crash_jobs(self, tmp_path):
        scenario = _scenario()
        before = _service(tmp_path, fleet=1, config=_fleet_config(tmp_path))
        # Never started: the job is journaled and ledgered but unserved —
        # exactly the state a crash leaves behind.
        job_id = before.submit(_spec(scenario)).id
        before.stop(wait=True)

        after = _service(tmp_path, fleet=1, config=_fleet_config(tmp_path))
        try:
            replayed = after.registry.get(job_id)
            assert replayed is not None
            assert replayed.status == JOB_QUEUED
            after.start()
            job = _wait_finished(after, job_id)
            assert job.status == JOB_DONE
            assert job.results[0]["status"] == "ok"
            # Replayed work belongs to the old process: the new daemon's
            # own submission counter stays clean.
            assert after.metrics_payload()["jobs"]["submitted"] == 0
        finally:
            after.stop(wait=True)

    def test_drain_timeout_requeues_inflight_job_without_burning_budget(
        self, tmp_path
    ):
        config = _fleet_config(
            tmp_path,
            drain_timeout=0.3,
            mapper_factory=f"{CHAOS}:stalling_mapper",
            mapper_kwargs=(
                ("attempts_dir", str(tmp_path / "attempts")),
                ("fail_first", 99),
                ("key", "drain"),
                ("delay", 120.0),
            ),
        )
        service = _service(tmp_path, fleet=1, config=config)
        service.start()
        job_id = service.submit(_spec(_scenario())).id
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            workers = service.supervisor.snapshot()["workers"]
            if any(w["job"] == job_id for w in workers):
                break
            time.sleep(0.05)
        else:
            pytest.fail("worker never picked the job up")
        service.stop(wait=True)

        # The in-flight job was handed back, not lost and not charged.
        assert service.registry.get(job_id).status == JOB_QUEUED
        with JobLedger(tmp_path / "ledger.jsonl") as ledger:
            lease = ledger.get(job_id)
            assert lease.state == LEASE_PENDING
            assert lease.attempts == 0


# ----------------------------------------------------------------------
class TestBackpressure:
    def test_submit_beyond_depth_raises_queue_full(self, tmp_path):
        service = _service(
            tmp_path, fleet=1, config=_fleet_config(tmp_path), max_queue_depth=1
        )
        # Deliberately never started: depth can only grow.
        service.submit(_spec(_scenario()))
        with pytest.raises(QueueFull) as excinfo:
            service.submit(_spec(_scenario(dimension=10)))
        assert excinfo.value.retry_after is not None
        assert service.metrics.snapshot()["counters"]["backpressure_rejections"] == 1
        service.stop(wait=True)

    def test_http_front_turns_queue_full_into_429(self, tmp_path):
        service = _service(
            tmp_path, fleet=1, config=_fleet_config(tmp_path), max_queue_depth=1
        )
        server = make_server(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=30.0)
        try:
            accepted = client.submit(payload=_spec(_scenario()).payload())
            assert accepted["status"] == "queued"
            with pytest.raises(ServiceError) as excinfo:
                client.submit(payload=_spec(_scenario(dimension=10)).payload())
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1
            health = client.health()
            assert health["max_queue_depth"] == 1
            assert health["queued"] == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.stop(wait=True)
