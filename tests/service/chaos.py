"""Deterministic fault injection for the fleet chaos tests.

These helpers are loaded *by worker processes* through
``FleetConfig.mapper_factory`` references (``"/path/chaos.py:flaky_mapper"``)
— spawn cannot pickle closures and ``tests/`` is not an importable
package in a child, so the factory contract is a file path plus a
module-level function name.

The point of the module is determinism under chaos: every injected
fault is driven by an *attempt counter persisted on disk* (one flock'd
file per fault key), so the schedule "fail the first K attempts, then
succeed" holds no matter which worker process draws the job, how many
times the supervisor respawns workers, or whether the whole daemon
restarts in between.
"""

from __future__ import annotations

import fcntl
import os
import time
from pathlib import Path

from repro.batch.engine import BatchMapper

#: Exit code for ``mode="exit"`` faults — distinct from Python crashes.
CRASH_EXIT_CODE = 23


def bump_attempt(attempts_dir: str | Path, key: str) -> int:
    """Increment and return the persistent attempt counter for ``key``.

    Read-modify-write under an exclusive ``flock``, so concurrent
    workers (and restarted daemons) see one strictly increasing series.
    """
    path = Path(attempts_dir) / f"{key}.attempts"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a+b") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            handle.seek(0)
            raw = handle.read().strip()
            count = (int(raw) if raw else 0) + 1
            handle.seek(0)
            handle.truncate()
            handle.write(str(count).encode("ascii"))
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    return count


def read_attempts(attempts_dir: str | Path, key: str) -> int:
    """The counter's current value (0 if the fault never fired)."""
    path = Path(attempts_dir) / f"{key}.attempts"
    try:
        raw = path.read_text(encoding="ascii").strip()
    except OSError:
        return 0
    return int(raw) if raw else 0


class FaultInjectingMapper(BatchMapper):
    """A BatchMapper that sabotages the first ``fail_first`` attempts.

    Every ``map_all`` call bumps the shared attempt counter for ``key``;
    while the count is ``<= fail_first`` the configured fault fires:

    ``"raise"``
        Raise ``RuntimeError`` — the worker reports a failed attempt,
        which burns one unit of the job's retry budget and re-queues it
        (or dead-letters it once the budget is gone).
    ``"exit"``
        ``os._exit(CRASH_EXIT_CODE)`` — a hard process death with no
        cleanup, indistinguishable from ``kill -9`` to the supervisor.
    ``"sleep"``
        Sleep ``delay`` seconds *then solve normally* — a stall window
        in which a test can SIGKILL the worker mid-solve; if nobody
        kills it, the attempt still succeeds (benign fallback).

    Attempts beyond ``fail_first`` delegate to the real engine.
    """

    def __init__(
        self,
        cache=None,
        attempts_dir: str | Path | None = None,
        fail_first: int = 1,
        mode: str = "raise",
        key: str = "fault",
        delay: float = 30.0,
    ) -> None:
        super().__init__(jobs=1, portfolio=False, cache=cache)
        if attempts_dir is None:
            raise ValueError("attempts_dir is required (faults must persist)")
        if mode not in ("raise", "exit", "sleep"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self.attempts_dir = attempts_dir
        self.fail_first = fail_first
        self.mode = mode
        self.key = key
        self.delay = delay

    def map_all(self, batch_jobs, should_cancel=None):
        count = bump_attempt(self.attempts_dir, self.key)
        if count <= self.fail_first:
            if self.mode == "exit":
                os._exit(CRASH_EXIT_CODE)
            if self.mode == "raise":
                raise RuntimeError(f"injected fault (attempt {count})")
            # "sleep": stall in small slices so a cancel/kill window
            # exists, then fall through and solve for real.
            deadline = time.monotonic() + self.delay
            while time.monotonic() < deadline:
                if should_cancel is not None and should_cancel():
                    break
                time.sleep(0.05)
        return super().map_all(batch_jobs, should_cancel=should_cancel)


class CountingMapper(BatchMapper):
    """A BatchMapper that counts ``map_all`` invocations, then solves.

    The deadline-propagation tests use it to prove a claimed-but-expired
    job terminates with *zero* mapper invocations: the persistent
    counter survives worker spawns and daemon restarts, so "the mapper
    was never called" is a disk fact, not an in-memory guess.
    """

    def __init__(
        self,
        cache=None,
        attempts_dir: str | Path | None = None,
        key: str = "invocations",
    ) -> None:
        super().__init__(jobs=1, portfolio=False, cache=cache)
        if attempts_dir is None:
            raise ValueError("attempts_dir is required (counts must persist)")
        self.attempts_dir = attempts_dir
        self.key = key

    def map_all(self, batch_jobs, should_cancel=None):
        bump_attempt(self.attempts_dir, self.key)
        return super().map_all(batch_jobs, should_cancel=should_cancel)


# -- factories (FleetConfig.mapper_factory targets) ---------------------
def flaky_mapper(cache=None, **kwargs):
    """First ``fail_first`` attempts raise; later attempts solve."""
    return FaultInjectingMapper(cache=cache, mode="raise", **kwargs)


def crashing_mapper(cache=None, **kwargs):
    """First ``fail_first`` attempts hard-kill the worker process."""
    return FaultInjectingMapper(cache=cache, mode="exit", **kwargs)


def stalling_mapper(cache=None, **kwargs):
    """First ``fail_first`` attempts stall ``delay`` seconds, then solve."""
    return FaultInjectingMapper(cache=cache, mode="sleep", **kwargs)


def counting_mapper(cache=None, **kwargs):
    """Counts every ``map_all`` call in the attempts dir, then solves."""
    return CountingMapper(cache=cache, **kwargs)


class TracedStallingMapper(BatchMapper):
    """Journals an ``attempt`` span, then stalls — the SIGKILL-survival
    fixture for trace tests.

    The span (tagged with the persistent attempt number) is flushed to
    the worker's journal *before* the stall begins, so a test that kills
    the worker mid-stall knows exactly which record must survive the
    supervisor's salvage merge.
    """

    def __init__(
        self,
        cache=None,
        attempts_dir: str | Path | None = None,
        fail_first: int = 1,
        key: str = "traced-stall",
        delay: float = 60.0,
    ) -> None:
        super().__init__(jobs=1, portfolio=False, cache=cache)
        if attempts_dir is None:
            raise ValueError("attempts_dir is required (faults must persist)")
        self.attempts_dir = attempts_dir
        self.fail_first = fail_first
        self.key = key
        self.delay = delay

    def map_all(self, batch_jobs, should_cancel=None):
        from repro import trace

        count = bump_attempt(self.attempts_dir, self.key)
        trace.record_span(
            "attempt", start=time.time(), duration=0.0, attempt=count
        )
        runtime = trace.get_runtime()
        if runtime is not None:
            runtime.flush()
        if count <= self.fail_first:
            deadline = time.monotonic() + self.delay
            while time.monotonic() < deadline:
                if should_cancel is not None and should_cancel():
                    break
                time.sleep(0.05)
        return super().map_all(batch_jobs, should_cancel=should_cancel)


def bnb_portfolio_mapper(cache=None, **kwargs):
    """Race only the pure-Python branch-and-bound backend.

    HiGHS usually proves optimality before the B&B even starts, so a
    default portfolio rarely emits incumbent/bound progress events; this
    factory forces the slow solver so traced fleet tests can observe
    live solver progress deterministically.
    """
    from repro.batch.portfolio import portfolio_solver_factory
    from repro.ilp.solve import SolverSpec

    return BatchMapper(
        jobs=1,
        portfolio=portfolio_solver_factory(specs=(SolverSpec("bnb"),)),
        cache=cache,
        **kwargs,
    )


def traced_stalling_mapper(cache=None, **kwargs):
    """Journals an attempt span then stalls; later attempts solve."""
    return TracedStallingMapper(cache=cache, **kwargs)
