"""ServiceClient resilience: retries, backoff, 429 handling, stream drops.

Unit-level: ``_open`` is stubbed so every failure mode is deterministic
(no sockets, no sleeping — ``time.sleep`` is captured, not served).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.service.client import ServiceClient, ServiceError, StreamInterrupted

pytestmark = pytest.mark.service


class _Response:
    """Just enough of an HTTP response: context manager + read()/lines."""

    def __init__(self, payload=None, lines=None, explode_after=None):
        self._body = json.dumps(payload or {}).encode()
        self._lines = [
            json.dumps(line).encode() + b"\n" for line in (lines or [])
        ]
        self._explode_after = explode_after

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def read(self):
        return self._body

    def __iter__(self):
        for index, line in enumerate(self._lines):
            if self._explode_after is not None and index >= self._explode_after:
                raise ConnectionResetError("peer went away")
            yield line


def _client(monkeypatch, script, **kwargs):
    """A client whose ``_open`` pops canned outcomes off ``script``.

    Entries are either exceptions (raised) or ``_Response``s (returned);
    sleeps are recorded instead of slept.
    """
    client = ServiceClient("http://stub", **kwargs)
    calls = []
    sleeps = []

    def fake_open(method, path, payload=None, headers=None):
        calls.append((method, path))
        outcome = script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    monkeypatch.setattr(client, "_open", fake_open)
    monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
    return client, calls, sleeps


# ----------------------------------------------------------------------
class TestGetRetries:
    def test_transient_connection_errors_retry_until_success(self, monkeypatch):
        script = [
            ServiceError("GET /jobs failed: refused"),
            ServiceError("GET /jobs failed: reset"),
            _Response({"jobs": []}),
        ]
        client, calls, sleeps = _client(monkeypatch, script, max_retries=2)
        assert client.jobs() == []
        assert len(calls) == 3
        assert len(sleeps) == 2

    def test_http_errors_never_retry(self, monkeypatch):
        script = [ServiceError("boom", status=500)]
        client, calls, _ = _client(monkeypatch, script, max_retries=5)
        with pytest.raises(ServiceError):
            client.job("j1")
        assert len(calls) == 1

    def test_default_client_stays_fail_fast(self, monkeypatch):
        script = [ServiceError("refused")]
        client, calls, _ = _client(monkeypatch, script)
        with pytest.raises(ServiceError):
            client.health()
        assert len(calls) == 1

    def test_retries_exhausted_raises_last_error(self, monkeypatch):
        script = [ServiceError(f"refused #{i}") for i in range(3)]
        client, calls, _ = _client(monkeypatch, script, max_retries=2)
        with pytest.raises(ServiceError, match="#2"):
            client.metrics()
        assert len(calls) == 3

    def test_posts_never_retry_connection_errors(self, monkeypatch):
        # A cancel whose response got lost may still have landed —
        # resending it is not the client's call to make.
        script = [ServiceError("reset mid-flight")]
        client, calls, _ = _client(monkeypatch, script, max_retries=3)
        with pytest.raises(ServiceError):
            client.cancel("j1")
        assert len(calls) == 1


class TestSubmitBackpressure:
    def test_429_retries_honoring_retry_after(self, monkeypatch):
        script = [
            ServiceError("full", status=429, retry_after=7.0),
            _Response({"id": "job-1", "scenarios": 1, "status": "queued"}),
        ]
        client, calls, sleeps = _client(monkeypatch, script, max_retries=1)
        accepted = client.submit(payload={"scenarios": []})
        assert accepted["id"] == "job-1"
        assert sleeps == [7.0]  # the server's hint wins over backoff

    def test_429_without_hint_uses_backoff(self, monkeypatch):
        script = [
            ServiceError("full", status=429),
            _Response({"id": "job-2", "scenarios": 1, "status": "queued"}),
        ]
        client, _, sleeps = _client(monkeypatch, script, max_retries=1)
        client.submit(payload={"scenarios": []})
        assert len(sleeps) == 1
        assert 0.0 <= sleeps[0] <= client.backoff_base

    def test_429_beyond_budget_raises(self, monkeypatch):
        script = [ServiceError("full", status=429, retry_after=1.0)] * 2
        client, calls, _ = _client(monkeypatch, script, max_retries=1)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(payload={"scenarios": []})
        assert excinfo.value.status == 429
        assert len(calls) == 2

    def test_other_http_errors_do_not_retry(self, monkeypatch):
        script = [ServiceError("bad spec", status=400)]
        client, calls, _ = _client(monkeypatch, script, max_retries=3)
        with pytest.raises(ServiceError):
            client.submit(payload={"scenarios": []})
        assert len(calls) == 1


class TestBackoff:
    def test_backoff_is_capped_and_jittered(self):
        client = ServiceClient("http://stub", backoff_base=1.0, backoff_cap=4.0)
        for attempt in range(8):
            ceiling = min(4.0, 1.0 * (2**attempt))
            for _ in range(10):
                assert 0.0 <= client._backoff(attempt) <= ceiling

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient("http://stub", max_retries=-1)


class TestStreamInterruption:
    def test_connection_drop_mid_stream_raises_stream_interrupted(
        self, monkeypatch
    ):
        script = [
            _Response(
                lines=[{"event": "queued"}, {"event": "running"}],
                explode_after=2,
            )
        ]
        client, _, _ = _client(monkeypatch, script)
        events = []
        with pytest.raises(StreamInterrupted):
            for event in client.stream("j1"):
                events.append(event)
        assert [e["event"] for e in events] == ["queued", "running"]

    def test_stream_ending_without_terminal_event_raises(self, monkeypatch):
        script = [_Response(lines=[{"event": "queued"}, {"event": "running"}])]
        client, _, _ = _client(monkeypatch, script)
        with pytest.raises(StreamInterrupted, match="without a terminal event"):
            list(client.stream("j1"))

    def test_terminal_stream_is_not_interrupted(self, monkeypatch):
        script = [
            _Response(lines=[{"event": "queued"}, {"event": "done"}])
        ]
        client, _, _ = _client(monkeypatch, script)
        events = list(client.stream("j1"))
        assert [e["event"] for e in events] == ["queued", "done"]

    def test_stream_interrupted_is_a_service_error(self):
        # So existing `except ServiceError` callers keep catching drops.
        assert issubclass(StreamInterrupted, ServiceError)
