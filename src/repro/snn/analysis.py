"""Structural analyses of spiking networks.

Beyond the Table-I attributes (:mod:`repro.snn.stats`), the mapping
heuristics and the experiment reports use deeper structure: component
decomposition (SpikeHard's MCC granularity bound), recurrence (which
breaks feed-forward scheduling assumptions), depth (worst-case inference
latency in timesteps), and degree histograms (the raw material of the
Gini indices).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .network import Network


@dataclass(frozen=True)
class StructureReport:
    """One-shot structural summary of a network."""

    num_components: int
    largest_component: int
    is_recurrent: bool
    num_feedback_synapses: int
    depth: int  # longest path in the acyclic condensation, in synapses
    isolated_neurons: int

    def as_rows(self) -> list[tuple[str, float]]:
        return [
            ("weakly connected components", self.num_components),
            ("largest component size", self.largest_component),
            ("recurrent", int(self.is_recurrent)),
            ("feedback synapses", self.num_feedback_synapses),
            ("depth (synapses)", self.depth),
            ("isolated neurons", self.isolated_neurons),
        ]


def weakly_connected_components(network: Network) -> list[set[int]]:
    """Component decomposition, largest first (deterministic tiebreak)."""
    graph = network.to_networkx()
    comps = [set(c) for c in nx.weakly_connected_components(graph)]
    return sorted(comps, key=lambda c: (-len(c), min(c)))


def feedback_synapses(network: Network) -> list[tuple[int, int]]:
    """A minimal-ish set of synapses whose removal makes the net acyclic.

    Computed by DFS back-edge detection; deterministic (sorted adjacency).
    """
    color: dict[int, int] = {}
    back: list[tuple[int, int]] = []

    def dfs(root: int) -> None:
        stack: list[tuple[int, iter]] = [(root, iter(sorted(network.successors(root))))]
        color[root] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                state = color.get(nxt, 0)
                if state == 0:
                    color[nxt] = 1
                    stack.append((nxt, iter(sorted(network.successors(nxt)))))
                    advanced = True
                    break
                if state == 1:
                    back.append((node, nxt))
            if not advanced:
                color[node] = 2
                stack.pop()

    for nid in network.neuron_ids():
        if color.get(nid, 0) == 0:
            dfs(nid)
    return back


def network_depth(network: Network) -> int:
    """Longest path (in synapses) through the acyclic condensation.

    For recurrent networks, strongly connected components are contracted
    first, so the depth reflects the feed-forward backbone.
    """
    graph = network.to_networkx()
    condensed = nx.condensation(graph)
    if condensed.number_of_nodes() == 0:
        return 0
    return int(nx.dag_longest_path_length(condensed))


def structure_report(network: Network) -> StructureReport:
    """Compute the full structural summary."""
    comps = weakly_connected_components(network)
    feedback = feedback_synapses(network)
    isolated = sum(
        1
        for nid in network.neuron_ids()
        if network.fan_in(nid) == 0 and network.fan_out(nid) == 0
    )
    return StructureReport(
        num_components=len(comps),
        largest_component=len(comps[0]) if comps else 0,
        is_recurrent=bool(feedback),
        num_feedback_synapses=len(feedback),
        depth=network_depth(network),
        isolated_neurons=isolated,
    )


def degree_histogram(network: Network, direction: str = "in") -> dict[int, int]:
    """degree -> neuron count (the distribution behind the Gini index)."""
    if direction not in ("in", "out"):
        raise ValueError("direction must be 'in' or 'out'")
    fan = network.fan_in if direction == "in" else network.fan_out
    hist: dict[int, int] = {}
    for nid in network.neuron_ids():
        d = fan(nid)
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))
