"""Process-safe solve entry points.

The batch engine runs solves inside worker processes, which needs two
things the backend classes alone don't give it:

1. a *picklable* description of "which solver, with which limits" that can
   cross a process boundary cheaply — :class:`SolverSpec`;
2. a *cancellation-safe* module-level entry — :func:`solve_model` — that
   turns a ``KeyboardInterrupt`` (pool shutdown, Ctrl-C) into a best-effort
   result instead of a poisoned worker.

Both backends' option objects are plain frozen dataclasses and every
:class:`~repro.ilp.result.SolveResult` contains only plain data, so the
full request/response cycle pickles without custom reducers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .bnb_backend import BnBBackend, BnBOptions
from .highs_backend import HighsBackend, HighsOptions
from .lp_round import LpRoundBackend, LpRoundOptions
from .model import Model
from .result import Incumbent, SolveResult, SolveStatus

#: Names accepted by :attr:`SolverSpec.backend`.
BACKEND_NAMES = ("highs", "bnb", "lp_round")

#: Values accepted by :attr:`SolverSpec.emphasis` (``None`` = balanced).
EMPHASIS_MODES = ("speed", "quality")

#: The loose relative gap ``emphasis="speed"`` implies when no explicit
#: ``mip_rel_gap`` is given: stop as soon as the incumbent is within 5%.
SPEED_EMPHASIS_GAP = 0.05


@dataclass(frozen=True)
class SolverSpec:
    """A picklable (backend, limits) pair — one portfolio *arm*.

    ``build()`` instantiates the concrete backend; the spec itself is what
    travels between processes.  Fields that a backend does not understand
    are simply ignored by it (e.g. ``det_limit`` for HiGHS, ``node_limit``
    for ``lp_round``).

    Tuning knobs (all optional, all picklable):

    - ``time_limit`` — wall-clock cap in seconds;
    - ``mip_rel_gap`` — stop once the relative optimality gap closes to
      this (``0.05`` = accept 5%-from-proven);
    - ``node_limit`` — branch-and-bound node cap (anytime behavior: the
      best incumbent at the cap is returned as ``FEASIBLE``);
    - ``det_limit`` — deterministic-work cap (``bnb`` only; reproducible
      across machines, unlike wall time);
    - ``emphasis`` — coarse intent: ``"speed"`` loosens the gap to
      :data:`SPEED_EMPHASIS_GAP` when no explicit gap is set (cheap DSE
      fidelity rungs), ``"quality"`` forces the gap to 0 even if a looser
      default would apply (top rungs / final answers), ``None`` keeps the
      backend's balanced defaults.  Explicit ``mip_rel_gap`` always wins
      over ``"speed"``.

    Backends: ``"highs"`` (exact, SciPy HiGHS), ``"bnb"`` (exact,
    pure-Python branch and bound), ``"lp_round"`` (heuristic LP-relaxation
    rounding — returns a feasible incumbent and a true LP dual bound fast,
    never a proof; see :mod:`repro.ilp.lp_round`).
    """

    backend: str = "highs"
    time_limit: float | None = None  # wall seconds
    mip_rel_gap: float | None = None  # relative-gap stop
    node_limit: int | None = None  # branch-and-bound node cap
    det_limit: float | None = None  # deterministic work cap (bnb only)
    emphasis: str | None = None  # "speed" | "quality" | None (balanced)

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKEND_NAMES}"
            )
        if self.emphasis is not None and self.emphasis not in EMPHASIS_MODES:
            raise ValueError(
                f"unknown emphasis {self.emphasis!r}; choose from {EMPHASIS_MODES}"
            )

    def with_time_limit(self, time_limit: float | None) -> "SolverSpec":
        return replace(self, time_limit=time_limit)

    def effective_gap(self, default: float | None = None) -> float | None:
        """The relative gap after ``emphasis`` is applied.

        Precedence: explicit ``mip_rel_gap`` > ``emphasis`` > ``default``.
        """
        if self.mip_rel_gap is not None:
            return self.mip_rel_gap
        if self.emphasis == "speed":
            return SPEED_EMPHASIS_GAP
        if self.emphasis == "quality":
            return 0.0
        return default

    def build(self):
        """Instantiate the backend this spec describes."""
        if self.backend == "highs":
            return HighsBackend(
                HighsOptions(
                    time_limit=self.time_limit,
                    mip_rel_gap=self.effective_gap(),
                    node_limit=self.node_limit,
                )
            )
        if self.backend == "lp_round":
            return LpRoundBackend(
                LpRoundOptions(
                    time_limit=self.time_limit if self.time_limit is not None else 5.0
                )
            )
        gap = self.effective_gap(1e-6)
        options = BnBOptions(
            max_nodes=self.node_limit if self.node_limit is not None else 100_000,
            time_limit=self.time_limit,
            det_limit=self.det_limit,
            gap_tol=gap if gap is not None else 1e-6,
        )
        return BnBBackend(options)


def solve_model(
    model: Model,
    spec: SolverSpec,
    warm_start: dict[str, float] | np.ndarray | None = None,
    keep_values: bool = True,
) -> SolveResult:
    """Solve ``model`` per ``spec``; never lets an interrupt escape empty.

    A ``KeyboardInterrupt`` mid-solve (the way process pools tear workers
    down) degrades to the warm start when one was supplied — the same
    fall-back contract :class:`HighsBackend` applies at its time limit —
    instead of propagating and poisoning the whole batch.
    """
    backend = spec.build()
    try:
        return backend.solve(model, warm_start=warm_start, keep_values=keep_values)
    except KeyboardInterrupt:
        if warm_start is None:
            return SolveResult(
                status=SolveStatus.NO_SOLUTION,
                backend=f"{spec.backend}-interrupted",
            )
        x0 = model.dense_values(warm_start)
        objective = model.objective_of(x0)
        values = model.values_dict(x0) if keep_values else None
        return SolveResult(
            status=SolveStatus.FEASIBLE,
            objective=objective,
            values=values,
            x=x0 if keep_values else None,
            incumbents=[Incumbent(objective, 0.0, 0.0, values)],
            backend=f"{spec.backend}-interrupted",
        )
