"""Memristor non-ideality models.

The paper motivates small crossbars with "non-idealities that limit
crossbar dimensions" (§II-B) but evaluates on ideal arrays.  This module
supplies the missing physical layer so mapped networks can be *executed
under non-ideal analog behaviour* and the accuracy cost of crossbar-size
choices can be quantified:

- **conductance quantization** — weights snap to a finite number of
  conductance levels per device;
- **programming variation** — lognormal multiplicative error applied once
  when a weight is programmed;
- **read noise** — per-access Gaussian noise (modelled as a per-synapse
  perturbation drawn per run, the standard fast approximation);
- **IR drop** — wire resistance attenuates currents with distance from
  the drivers; longer word-lines (bigger crossbars) lose more, which is
  exactly the effect that caps practical crossbar dimensions;
- **stuck-at faults** — a fraction of devices frozen at min/max
  conductance.

The entry point :func:`apply_nonidealities` rewrites a mapped network's
synapse weights according to the crossbar each synapse lands in, returning
a perturbed network that runs on the ordinary simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping as MappingT

import numpy as np

from ..snn.network import Network


@dataclass(frozen=True)
class NonidealityModel:
    """Device / array non-ideality parameters."""

    conductance_levels: int = 16  # distinct programmable levels per device
    programming_sigma: float = 0.0  # lognormal sigma of write variation
    read_noise_sigma: float = 0.0  # gaussian sigma (relative) per run
    wire_resistance: float = 0.0  # IR-drop coefficient per crossbar column
    stuck_at_fraction: float = 0.0  # fraction of devices stuck at 0 or max
    seed: int = 0

    def __post_init__(self) -> None:
        if self.conductance_levels < 2:
            raise ValueError("need at least 2 conductance levels")
        for name in ("programming_sigma", "read_noise_sigma", "wire_resistance"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.stuck_at_fraction < 1.0:
            raise ValueError("stuck_at_fraction must be in [0, 1)")


def quantize_weight(weight: float, max_abs: float, levels: int) -> float:
    """Snap a weight to the nearest of ``levels`` signed conductance steps.

    Uses a symmetric uniform quantizer over [-max_abs, max_abs]; zero is
    always representable (devices can be left unprogrammed).
    """
    if max_abs <= 0:
        return 0.0
    step = max_abs / (levels - 1)
    return float(np.clip(round(weight / step) * step, -max_abs, max_abs))


def _ir_drop_factor(column_position: int, num_columns: int, coeff: float) -> float:
    """Attenuation of the column at ``column_position`` (0 = nearest driver).

    First-order model: relative current loss grows linearly with distance
    along the word-line, scaled by the wire-resistance coefficient.  Wider
    crossbars therefore degrade more — the §II-B scaling limit.
    """
    if num_columns <= 1 or coeff <= 0:
        return 1.0
    distance = column_position / (num_columns - 1)
    return max(0.0, 1.0 - coeff * distance)


def apply_nonidealities(
    network: Network,
    assignment: MappingT[int, int],
    crossbar_outputs: MappingT[int, int],
    model: NonidealityModel,
) -> Network:
    """Return a copy of ``network`` with weights degraded per placement.

    ``assignment`` maps neuron -> crossbar; ``crossbar_outputs`` maps
    crossbar -> its output-line count (used by the IR-drop model: a
    neuron's column index within its crossbar determines attenuation).
    """
    rng = np.random.default_rng(model.seed)
    degraded = network.copy(f"{network.name}-nonideal")
    max_abs = max((abs(s.weight) for s in network.synapses()), default=0.0)

    # Deterministic column positions: neurons sorted by id per crossbar.
    column_of: dict[int, int] = {}
    by_crossbar: dict[int, list[int]] = {}
    for nid, j in sorted(assignment.items()):
        by_crossbar.setdefault(j, []).append(nid)
    for j, members in by_crossbar.items():
        for pos, nid in enumerate(sorted(members)):
            column_of[nid] = pos

    for syn in network.synapses():
        weight = quantize_weight(syn.weight, max_abs, model.conductance_levels)
        if model.programming_sigma > 0:
            weight *= float(rng.lognormal(0.0, model.programming_sigma))
        if model.read_noise_sigma > 0:
            weight *= 1.0 + float(rng.normal(0.0, model.read_noise_sigma))
        j = assignment[syn.post]
        num_cols = crossbar_outputs.get(j, 1)
        weight *= _ir_drop_factor(column_of[syn.post], num_cols, model.wire_resistance)
        if model.stuck_at_fraction > 0 and rng.random() < model.stuck_at_fraction:
            weight = 0.0 if rng.random() < 0.5 else float(np.sign(weight) or 1.0) * max_abs
        degraded.replace_synapse(replace(syn, weight=weight))
    return degraded


@dataclass(frozen=True)
class FidelityReport:
    """How far a degraded execution drifted from the ideal one."""

    ideal_spikes: int
    degraded_spikes: int
    spike_count_error: float  # relative |ideal - degraded| / max(ideal, 1)
    raster_jaccard: float  # overlap of (t, neuron) spike sets


def fidelity(
    network: Network,
    degraded: Network,
    input_spikes: MappingT[int, list[int]],
    duration: int,
) -> FidelityReport:
    """Run both networks on identical input and compare spike behaviour."""
    from ..snn.simulator import Simulator

    ideal = Simulator(network).run(duration, input_spikes=input_spikes)
    noisy = Simulator(degraded).run(duration, input_spikes=input_spikes)
    set_a = set(ideal.spikes)
    set_b = set(noisy.spikes)
    union = len(set_a | set_b)
    jaccard = (len(set_a & set_b) / union) if union else 1.0
    return FidelityReport(
        ideal_spikes=ideal.total_spikes,
        degraded_spikes=noisy.total_spikes,
        spike_count_error=abs(ideal.total_spikes - noisy.total_spikes)
        / max(ideal.total_spikes, 1),
        raster_jaccard=jaccard,
    )
