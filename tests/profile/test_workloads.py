"""Tests for the extra synthetic workloads and PGO transfer behaviour."""

import numpy as np
import pytest

from repro.profile.profiler import collect_profile
from repro.profile.workloads import hotspot_frames, noise_frames, stroke_frames
from repro.snn.generators import layered_network


class TestGenerators:
    @pytest.mark.parametrize(
        "factory",
        [stroke_frames, hotspot_frames, noise_frames],
        ids=["strokes", "hotspots", "noise"],
    )
    def test_shapes_and_range(self, factory):
        samples = factory(rows=6, cols=6, num_samples=15, seed=3)
        assert len(samples) == 15
        for s in samples:
            assert s.frame.shape == (6, 6)
            assert s.frame.min() >= 0.0
            assert s.frame.max() <= 1.0 + 1e-12
            assert s.label >= 0

    @pytest.mark.parametrize(
        "factory",
        [stroke_frames, hotspot_frames, noise_frames],
        ids=["strokes", "hotspots", "noise"],
    )
    def test_deterministic(self, factory):
        a = factory(num_samples=5, seed=9)
        b = factory(num_samples=5, seed=9)
        assert all(np.array_equal(x.frame, y.frame) for x, y in zip(a, b))

    def test_validation(self):
        with pytest.raises(ValueError):
            stroke_frames(rows=1)
        with pytest.raises(ValueError):
            stroke_frames(segments=0)
        with pytest.raises(ValueError):
            hotspot_frames(num_hotspots=0)
        with pytest.raises(ValueError):
            noise_frames(density=0.0)

    def test_hotspot_labels_cover_hotspots(self):
        samples = hotspot_frames(num_samples=60, num_hotspots=3, seed=1)
        assert {s.label for s in samples} == {0, 1, 2}


class TestProfileConcentration:
    """Hotspot activity must concentrate spike mass more than noise —
    the property that makes PGO work (or not)."""

    @staticmethod
    def _top_share(counts: dict[int, int], k: int = 5) -> float:
        values = sorted(counts.values(), reverse=True)
        total = sum(values)
        if total == 0:
            return 0.0
        return sum(values[:k]) / total

    def test_hotspots_more_concentrated_than_noise(self):
        net = layered_network([9, 16, 6], connection_prob=0.4, seed=8)
        hot = collect_profile(
            net, hotspot_frames(rows=3, cols=3, num_samples=25, seed=2), window=16
        )
        noisy = collect_profile(
            net, noise_frames(rows=3, cols=3, num_samples=25, density=0.9, seed=2),
            window=16,
        )
        assert hot.total_spikes > 0 and noisy.total_spikes > 0
        assert self._top_share(hot.counts) > self._top_share(noisy.counts)
