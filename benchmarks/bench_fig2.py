"""Fig. 2 bench: area across MCC/axon x homo/het configurations.

Shape checks (paper: homo gain 16.7-27.6%, het further 66.9-72.7%):

- axon sharing never loses to MCC packing on either target,
- at least one network shows a strictly positive homogeneous gain,
- the heterogeneous target cuts area by a large factor for every network.
"""

from bench_config import FIG2, once
from repro.experiments.fig2 import run_fig2


def test_benchmark_fig2(benchmark):
    result = once(benchmark, lambda: run_fig2(FIG2))
    rows = result.rows
    assert len(rows) == 5
    homo_gains = []
    for (net, mcc_homo, axon_homo, mcc_het, axon_het,
         homo_gain, het_further, *_rest) in rows:
        # Exact formulation never worse than the double-counting baseline.
        assert axon_homo <= mcc_homo + 1e-9, net
        assert axon_het <= mcc_het + 1e-9, net
        # Heterogeneous target is a large win over homogeneous (paper:
        # 66.9-72.7% further; we accept anything above 40% at bench scale).
        assert het_further >= 40.0, (net, het_further)
        homo_gains.append(homo_gain)
    # The MCC axon double-counting must cost real area somewhere.
    assert max(homo_gains) > 0.0, homo_gains
