"""Symmetry breaking and lp_round racer invariants.

The load-bearing guarantees of the structure-exploiting solve path:

- symmetry-broken and unbroken models share the same *optimal objective*
  (symmetry constraints cut permuted copies of each solution, never the
  whole orbit — they preserve the optimum, not the optimizer identity),
  property-tested on small random instances solved to optimality;
- canonicalized warm starts satisfy the lex constraint blocks, so warm
  starting a symmetry-broken model never rejects a feasible mapping;
- the ``lp_round`` backend returns a *feasible* incumbent sandwiched
  between the LP dual bound and the warm start it was seeded with.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.ilp.result import SolveStatus
from repro.ilp.solve import SolverSpec, solve_model
from repro.mapping.axon_sharing import AreaModel, FormulationOptions
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.problem import MappingProblem
from repro.mapping.snu import RouteModelOptions, build_snu_model
from repro.mapping.symmetry import SYMMETRY_LEVELS, canonicalize, slot_orbits
from repro.mca.architecture import custom_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network


@st.composite
def small_problem(draw):
    """Instances small enough to solve to optimality in well under a second."""
    n = draw(st.integers(5, 9))
    m = draw(st.integers(n, 2 * n))
    seed = draw(st.integers(0, 10_000))
    net = random_network(n, m, seed=seed, max_fan_in=3)
    pool = draw(
        st.sampled_from(
            [
                [(CrossbarType(4, 4), n)],
                [(CrossbarType(4, 4), n // 2 + 1), (CrossbarType(8, 8), 2)],
            ]
        )
    )
    return MappingProblem(net, custom_architecture(pool))


def _optimal_area_objective(problem, symmetry: str) -> float:
    handle = AreaModel(problem, FormulationOptions(symmetry=symmetry))
    warm = handle.warm_start_from(greedy_first_fit(problem))
    result = HighsBackend(HighsOptions(time_limit=10)).solve(
        handle.model, warm_start=warm
    )
    assert result.status is SolveStatus.OPTIMAL, (
        f"small instance failed to close under symmetry={symmetry!r}"
    )
    return result.objective


@settings(max_examples=10, deadline=None)
@given(problem=small_problem())
def test_symmetry_levels_share_the_optimal_objective(problem):
    """The defining invariant: every level closes to the same optimum."""
    objectives = {
        level: _optimal_area_objective(problem, level)
        for level in SYMMETRY_LEVELS
    }
    assert objectives["order"] == pytest.approx(objectives["off"])
    assert objectives["lex"] == pytest.approx(objectives["off"])


@settings(max_examples=20, deadline=None)
@given(problem=small_problem())
def test_lex_warm_start_satisfies_the_broken_model(problem):
    """warm_start_from canonicalizes, so the vector passes every lex row."""
    handle = AreaModel(problem, FormulationOptions(symmetry="lex"))
    warm = handle.warm_start_from(greedy_first_fit(problem))
    assert handle.model.check_feasible(warm) == []


@settings(max_examples=20, deadline=None)
@given(problem=small_problem())
def test_lex_canonicalization_idempotent_and_metric_invariant(problem):
    mapping = greedy_first_fit(problem)
    canon = canonicalize(mapping, "lex")
    assert canon.validate() == []
    assert canonicalize(canon, "lex").assignment == canon.assignment
    # Permuting interchangeable slots moves nothing that is measured.
    assert canon.area() == pytest.approx(mapping.area())
    assert canon.global_routes() == mapping.global_routes()


def test_orbits_group_interchangeable_slots_only():
    arch = custom_architecture(
        [(CrossbarType(4, 4), 3), (CrossbarType(8, 8), 1)]
    )
    orbits = slot_orbits(arch, list(range(4)))
    # The lone 8x8 slot has no permutation partner: no orbit for it.
    assert orbits == [[0, 1, 2]]


def _fixed_problem() -> MappingProblem:
    net = random_network(12, 24, seed=7, max_fan_in=4)
    arch = custom_architecture(
        [(CrossbarType(4, 4), 6), (CrossbarType(8, 8), 3)]
    )
    return MappingProblem(net, arch)


class TestLpRound:
    def test_incumbent_feasible_and_sandwiched(self):
        problem = _fixed_problem()
        handle = AreaModel(problem)
        warm = handle.warm_start_from(greedy_first_fit(problem))
        result = solve_model(
            handle.model,
            SolverSpec("lp_round", time_limit=3.0),
            warm_start=warm,
        )
        assert result.status.has_solution()
        assert handle.model.check_feasible(result.x) == []
        # The LP optimum is a true dual bound for the minimization...
        assert result.bound is not None
        assert result.objective >= result.bound - 1e-6
        # ...and the repair loop never returns worse than its seed.
        assert result.objective <= handle.model.objective_of(warm) + 1e-9

    def test_lex_snu_incumbent_extracts_to_valid_mapping(self):
        problem = _fixed_problem()
        base = greedy_first_fit(problem)
        handle = build_snu_model(
            problem, base, options=RouteModelOptions(symmetry="lex")
        )
        warm = handle.warm_start_from(base)
        result = solve_model(
            handle.model,
            SolverSpec("lp_round", time_limit=3.0),
            warm_start=warm,
        )
        assert result.status.has_solution()
        assert handle.model.check_feasible(result.x) == []
        assert result.objective <= handle.model.objective_of(warm) + 1e-9
        mapping = handle.extract_mapping(result)
        assert mapping.validate() == []

    def test_infeasible_model_short_circuits(self):
        from repro.ilp.expr import lin_sum
        from repro.ilp.model import Model

        model = Model("infeasible")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add(lin_sum([x, y]) >= 3, name="impossible")
        model.minimize(lin_sum([x, y]))
        result = solve_model(model, SolverSpec("lp_round", time_limit=1.0))
        assert result.status is SolveStatus.INFEASIBLE
