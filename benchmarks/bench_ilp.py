"""Columnar ILP core bench: array-built models vs the per-expression path.

Measures build / lower / presolve / solve wall-clock for the two hottest
formulations (area and SNU) on fig2- and fig5-scale instances, comparing:

- **columnar** — the production builders (``AreaModel`` /
  ``build_snu_model``), which emit every constraint family as one
  :meth:`~repro.ilp.model.Model.add_block` over index arrays;
- **per-expression** — the same formulations restated through the
  operator/`lin_sum` compatibility path, i.e. exactly what the builders
  did before the columnar refactor.

Asserted, per instance:

- both paths lower to *identical* matrix forms (same CSR entries, bounds,
  objective vector), and a node-capped HiGHS solve of each returns
  bit-identical status + objective;
- the columnar path is **>= 5x** faster at build+lower on every fig-scale
  SNU instance (the acceptance floor; observed is typically ~10x).

It also benches the structure-exploiting *solve* acceleration:

- **accelerated vs baseline arm** — the fig2-E SNU instance solved by the
  ``lp_round`` racer on the ``symmetry="lex"`` model must be **>= 5x**
  faster than the baseline node-capped HiGHS arm while matching or
  beating its incumbent objective (the ``acceleration`` section);
- **symmetry objective equality** — on instances the node-capped solve
  closes to optimality, the symmetry-broken and unbroken models must
  return bit-identical optimal objectives (the ``symmetry_equality``
  section; symmetry breaking preserves the optimum, not the optimizer).

Emits ``BENCH_ilp.json`` at the **repo root** so the solver-core perf
trajectory is tracked across PRs alongside ``BENCH_simcore.json``.

Run:  pytest benchmarks/bench_ilp.py --benchmark-only
"""

import json
import time
from pathlib import Path

import numpy as np

from bench_config import once
from repro.experiments.common import het_problem
from repro.experiments.networks import paper_network
from repro.experiments.runner import ExperimentConfig
from repro.ilp.expr import lin_sum
from repro.ilp.highs_backend import HighsBackend, HighsOptions
from repro.ilp.model import Model
from repro.ilp.presolve import presolve
from repro.ilp.solve import SolveStatus, SolverSpec, solve_model
from repro.mapping.axon_sharing import (
    AreaModel,
    FormulationOptions,
    s_name,
    x_name,
    y_name,
    b_name,
)
from repro.mapping.greedy import greedy_first_fit
from repro.mapping.snu import RouteModel, RouteModelOptions, build_snu_model

#: Repo root (benchmarks/ is one level below it).
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_ilp.json"

#: (label, paper network, scale) — fig2 runs its exhibit scale, fig5 the
#: shared SMALL exhibit scale (see bench_config).
INSTANCES = [
    ("fig2-E", "E", 0.25),
    ("fig5-C", "C", 0.12),
]
#: Acceptance floor for columnar vs per-expression build+lower on SNU.
MIN_BUILD_SPEEDUP = 5.0
#: Acceptance floor for the symmetry + lp_round racer vs the baseline
#: node-capped HiGHS arm on the fig2-E SNU solve.
MIN_SOLVE_SPEEDUP = 5.0
#: Which instance the acceleration floor is asserted on.
ACCEL_INSTANCE = "fig2-E"
#: Wall-clock cap for the lp_round arm.  The rounding repair loop drains
#: its trial budget and exits early (a few seconds on the reference
#: host); the cap only bites on much slower machines, where the baseline
#: arm slows down proportionally, so the speedup floor still holds.
LP_ROUND_TIME_LIMIT = 20.0
#: Deterministic solve effort cap: identical model inputs + a node limit
#: (never a wall-clock limit) keep the two paths' solves bit-comparable.
SOLVE_NODE_LIMIT = 150
BUILD_REPEATS = 3


def _expression_area_model(problem) -> Model:
    """The area formulation via the per-expression compat path (the exact
    shape the builder emitted before the columnar refactor)."""
    model = Model("area-expr")
    neurons = problem.network.neuron_ids()
    slots = range(problem.num_slots)
    sources = problem.sources()
    y = {j: model.add_binary(y_name(j)) for j in slots}
    x = {(i, j): model.add_binary(x_name(i, j)) for i in neurons for j in slots}
    s = {(k, j): model.add_binary(s_name(k, j)) for k in sources for j in slots}
    for i in neurons:
        model.add(lin_sum(x[(i, j)] for j in slots) == 1, name=f"place_{i}")
    for j in slots:
        slot = problem.architecture.slot(j)
        model.add(
            lin_sum(x[(i, j)] for i in neurons) <= slot.outputs * y[j],
            name=f"outputs_{j}",
        )
    for k, i in problem.edges():
        for j in slots:
            model.add(s[(k, j)] >= x[(i, j)], name=f"share_{k}_{i}_{j}")
    for k in sources:
        succ = sorted(problem.succs(k))
        for j in slots:
            model.add(
                s[(k, j)] <= lin_sum(x[(i, j)] for i in succ),
                name=f"uplink_{k}_{j}",
            )
    for j in slots:
        slot = problem.architecture.slot(j)
        model.add(
            lin_sum(s[(k, j)] for k in sources) <= slot.inputs * y[j],
            name=f"inputs_{j}",
        )
    for group in problem.architecture.identical_slot_groups():
        for a, b in zip(group, group[1:]):
            model.add(y[a] >= y[b], name=f"sym_{a}_{b}")
    model.minimize(
        lin_sum(problem.architecture.slot(j).area * y[j] for j in slots)
    )
    return model


def _expression_snu_model(problem, base) -> Model:
    """The SNU (GLOBAL objective) formulation via the compat path."""
    model = Model("routes-expr")
    neurons = problem.network.neuron_ids()
    sources = problem.sources()
    slots = sorted(base.enabled_slots())
    y = {j: model.add_binary(y_name(j)) for j in slots}
    x = {(i, j): model.add_binary(x_name(i, j)) for i in neurons for j in slots}
    s = {(k, j): model.add_binary(s_name(k, j)) for k in sources for j in slots}
    for i in neurons:
        model.add(lin_sum(x[(i, j)] for j in slots) == 1, name=f"place_{i}")
    # Row families in the same order the columnar builder emits its blocks
    # (outputs, then inputs), so the lowered forms compare entry-for-entry.
    for j in slots:
        slot = problem.architecture.slot(j)
        model.add(
            lin_sum(x[(i, j)] for i in neurons) <= slot.outputs * y[j],
            name=f"outputs_{j}",
        )
    for j in slots:
        slot = problem.architecture.slot(j)
        model.add(
            lin_sum(s[(k, j)] for k in sources) <= slot.inputs * y[j],
            name=f"inputs_{j}",
        )
    for k, i in problem.edges():
        for j in slots:
            model.add(s[(k, j)] >= x[(i, j)], name=f"share_{k}_{i}_{j}")
    for k in sources:
        succ = sorted(problem.succs(k))
        for j in slots:
            model.add(
                s[(k, j)] <= lin_sum(x[(i, j)] for i in succ),
                name=f"uplink_{k}_{j}",
            )
    model.add(
        lin_sum(problem.architecture.slot(j).area * y[j] for j in slots)
        <= base.area(),
        name="area_budget",
    )
    b = {
        (k, j): model.add_binary(b_name(k, j)) for k in sources for j in slots
    }
    # Linearization rows family-major (all b<=s, then b<=x, then b>=s+x-1),
    # matching the columnar builder's block order entry-for-entry.
    for k in sources:
        for j in slots:
            model.add(b[(k, j)] <= s[(k, j)], name=f"b_le_s_{k}_{j}")
    for k in sources:
        for j in slots:
            model.add(b[(k, j)] <= x[(k, j)], name=f"b_le_x_{k}_{j}")
    for k in sources:
        for j in slots:
            model.add(
                b[(k, j)] >= s[(k, j)] + x[(k, j)] - 1, name=f"b_ge_{k}_{j}"
            )
    model.minimize(
        lin_sum(s[(k, j)] - b[(k, j)] for k in sources for j in slots)
    )
    return model


def _best_of(fn, repeats=BUILD_REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_forms_identical(fa, fb) -> None:
    assert fa.a_matrix.shape == fb.a_matrix.shape
    assert abs(fa.a_matrix - fb.a_matrix).nnz == 0
    np.testing.assert_array_equal(fa.c, fb.c)
    np.testing.assert_array_equal(fa.row_lb, fb.row_lb)
    np.testing.assert_array_equal(fa.row_ub, fb.row_ub)
    np.testing.assert_array_equal(fa.var_lb, fb.var_lb)
    np.testing.assert_array_equal(fa.var_ub, fb.var_ub)


def _bench_instance(label: str, network_name: str, scale: float) -> list[dict]:
    config = ExperimentConfig(scale=scale)
    network = paper_network(network_name, scale=scale)
    problem = het_problem(network, config)
    base = greedy_first_fit(problem)
    backend = HighsBackend(HighsOptions(node_limit=SOLVE_NODE_LIMIT))
    rows = []

    builders = {
        "area": (
            lambda: AreaModel(problem).model,
            lambda: _expression_area_model(problem),
        ),
        "snu": (
            lambda: build_snu_model(problem, base).model,
            lambda: _expression_snu_model(problem, base),
        ),
    }
    for formulation, (columnar_fn, expression_fn) in builders.items():
        col_s, _ = _best_of(lambda: columnar_fn().lower())
        col_model = columnar_fn()
        form_col = col_model.lower()
        expr_s, _ = _best_of(lambda: expression_fn().lower())
        expr_model = expression_fn()
        form_expr = expr_model.lower()
        _assert_forms_identical(form_expr, form_col)

        start = time.perf_counter()
        _, report = presolve(col_model)
        presolve_s = time.perf_counter() - start

        start = time.perf_counter()
        res_col = backend.solve(col_model)
        solve_s = time.perf_counter() - start
        res_expr = backend.solve(expr_model)
        # Identical lowered inputs + node-capped effort: the two paths'
        # solver outcomes must agree bit for bit.
        assert res_expr.status is res_col.status, (
            f"{label}/{formulation}: {res_expr.status} != {res_col.status}"
        )
        assert res_expr.objective == res_col.objective, (
            f"{label}/{formulation}: {res_expr.objective} != {res_col.objective}"
        )

        rows.append(
            {
                "instance": label,
                "formulation": formulation,
                "neurons": problem.num_neurons,
                "slots": problem.num_slots,
                "variables": col_model.num_vars,
                "rows": col_model.num_constraints,
                "nonzeros": col_model.stats()["nonzeros"],
                "expression_build_lower_seconds": expr_s,
                "columnar_build_lower_seconds": col_s,
                "build_lower_speedup": expr_s / col_s,
                "presolve_seconds": presolve_s,
                "presolve_rows_dropped": report.rows_dropped,
                "solve_seconds_node_capped": solve_s,
                "solve_status": res_col.status.value,
                "solve_objective": res_col.objective,
            }
        )
    return rows


def _instance_problem(label: str):
    """Rebuild the (deterministic) problem + greedy base for ``label``."""
    _, name, scale = next(i for i in INSTANCES if i[0] == label)
    config = ExperimentConfig(scale=scale)
    problem = het_problem(paper_network(name, scale=scale), config)
    return problem, greedy_first_fit(problem)


def _bench_acceleration(rows: list[dict]) -> dict:
    """The structure-exploiting arm vs the baseline arm on fig2-E SNU.

    Baseline: the node-capped HiGHS solve already measured in ``rows``
    (no warm start, no symmetry).  Accelerated: the ``lp_round`` racer on
    the ``symmetry="lex"`` model, warm-started from the greedy base the
    way the portfolio seeds its arms.  The racer's incumbent is checked
    feasible against the model and sandwiched by the LP bound.
    """
    baseline = next(
        r
        for r in rows
        if r["instance"] == ACCEL_INSTANCE and r["formulation"] == "snu"
    )
    problem, base = _instance_problem(ACCEL_INSTANCE)
    handle = build_snu_model(
        problem, base, options=RouteModelOptions(symmetry="lex")
    )
    warm = handle.warm_start_from(base)
    start = time.perf_counter()
    result = solve_model(
        handle.model,
        SolverSpec("lp_round", time_limit=LP_ROUND_TIME_LIMIT),
        warm_start=warm,
    )
    accelerated_s = time.perf_counter() - start
    assert result.status.has_solution(), "lp_round returned no incumbent"
    assert not handle.model.check_feasible(result.x), (
        "lp_round incumbent violates the symmetry-broken model"
    )
    assert result.bound is None or result.objective >= result.bound - 1e-6
    return {
        "instance": ACCEL_INSTANCE,
        "formulation": "snu",
        "baseline_arm": f"highs(node_limit={SOLVE_NODE_LIMIT})",
        "accelerated_arm": "lp_round(symmetry=lex, greedy warm start)",
        "baseline_seconds": baseline["solve_seconds_node_capped"],
        "baseline_objective": baseline["solve_objective"],
        "accelerated_seconds": accelerated_s,
        "accelerated_objective": result.objective,
        "accelerated_status": result.status.value,
        "lp_bound": result.bound,
        "solve_speedup": baseline["solve_seconds_node_capped"] / accelerated_s,
    }


def _bench_symmetry_equality(rows: list[dict]) -> list[dict]:
    """Lex-broken vs default models: identical optimal objectives.

    Symmetry breaking restricts the feasible set to canonical
    representatives of each slot-permutation orbit, so on any solve both
    sides *close* the optimal objective must agree bit for bit (the
    optimizer itself may differ).  Only instance/formulation pairs whose
    default node-capped solve came back OPTIMAL are compared — on capped
    feasible solves the incumbents are incomparable by design.
    """
    backend = HighsBackend(HighsOptions(node_limit=SOLVE_NODE_LIMIT))
    comparisons = []
    for label, _, _ in INSTANCES:
        problem, base = _instance_problem(label)
        for formulation in ("area", "snu"):
            row = next(
                r
                for r in rows
                if r["instance"] == label and r["formulation"] == formulation
            )
            if row["solve_status"] != SolveStatus.OPTIMAL.value:
                continue
            if formulation == "area":
                model = AreaModel(
                    problem, FormulationOptions(symmetry="lex")
                ).model
            else:
                model = build_snu_model(
                    problem, base, options=RouteModelOptions(symmetry="lex")
                ).model
            start = time.perf_counter()
            result = backend.solve(model)
            lex_s = time.perf_counter() - start
            comparisons.append(
                {
                    "instance": label,
                    "formulation": formulation,
                    "default_objective": row["solve_objective"],
                    "lex_objective": result.objective,
                    "lex_status": result.status.value,
                    "lex_solve_seconds": lex_s,
                    "objectives_identical": (
                        result.status is SolveStatus.OPTIMAL
                        and result.objective == row["solve_objective"]
                    ),
                }
            )
    return comparisons


def test_benchmark_ilp_core(benchmark):
    def _run():
        rows = [
            row
            for label, name, scale in INSTANCES
            for row in _bench_instance(label, name, scale)
        ]
        return {
            "instances": rows,
            "acceleration": _bench_acceleration(rows),
            "symmetry_equality": _bench_symmetry_equality(rows),
        }

    data = once(benchmark, _run)
    rows = data["instances"]
    acceleration = data["acceleration"]
    equality = data["symmetry_equality"]

    payload = {
        "schema": "repro.bench_ilp/2",
        "source": "benchmarks/bench_ilp.py",
        "min_snu_build_lower_speedup": MIN_BUILD_SPEEDUP,
        "min_solve_speedup": MIN_SOLVE_SPEEDUP,
        "instances": rows,
        "acceleration": acceleration,
        "symmetry_equality": equality,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    for row in rows:
        if row["formulation"] == "snu":
            assert row["build_lower_speedup"] >= MIN_BUILD_SPEEDUP, (
                f"{row['instance']}: columnar SNU build+lower only "
                f"{row['build_lower_speedup']:.1f}x faster "
                f"(< {MIN_BUILD_SPEEDUP}x floor)"
            )

    assert acceleration["solve_speedup"] >= MIN_SOLVE_SPEEDUP, (
        f"{ACCEL_INSTANCE} SNU: symmetry+lp_round arm only "
        f"{acceleration['solve_speedup']:.1f}x faster than the baseline "
        f"node-capped arm (< {MIN_SOLVE_SPEEDUP}x floor)"
    )
    assert (
        acceleration["accelerated_objective"]
        <= acceleration["baseline_objective"]
    ), "accelerated arm returned a worse incumbent than the baseline arm"

    closed = [r for r in equality if r["lex_status"] == SolveStatus.OPTIMAL.value]
    assert closed, "no symmetry-equality pair closed to optimality"
    for row in closed:
        assert row["objectives_identical"], (
            f"{row['instance']}/{row['formulation']}: lex objective "
            f"{row['lex_objective']} != default {row['default_objective']}"
        )
