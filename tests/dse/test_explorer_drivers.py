"""End-to-end exploration: explorer tiers, drivers, store resume.

Everything runs on a deliberately tiny space (one small Table-I twin,
two pools, two formulations = 4 scenarios, 6 grid solves) so the full
greedy → ILP → frontier → resume path stays tier-1 fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse.drivers import explore_adaptive, explore_grid
from repro.dse.explorer import Explorer
from repro.dse.objectives import objective_matrix
from repro.dse.pareto import nondominated_mask
from repro.dse.scenario import (
    ArchitectureSpec,
    DesignSpace,
    FormulationSpec,
    WorkloadSpec,
)
from repro.dse.store import TIER_GREEDY, TIER_ILP, RunStore

pytestmark = pytest.mark.dse

TIME_LIMIT = 4.0


@pytest.fixture(scope="module")
def tiny_space() -> DesignSpace:
    return DesignSpace(
        architectures=(
            ArchitectureSpec(kind="homogeneous", dimension=12),
            ArchitectureSpec(kind="heterogeneous"),
        ),
        workloads=(WorkloadSpec(network="C", scale=0.1, profile="uniform"),),
        formulations=(
            FormulationSpec(stages=("area",)),
            FormulationSpec(stages=("area", "snu")),
        ),
    )


class TestGreedyTier:
    def test_scores_without_ilp(self, tiny_space):
        explorer = Explorer(time_limit=TIME_LIMIT)
        results = explorer.evaluate_greedy(tiny_space.scenarios())
        assert len(results) == 4
        assert all(r.ok for r in results)
        assert all(r.solves == 0 for r in results)
        assert all(r.tier == TIER_GREEDY for r in results)
        for result in results:
            obj = result.objectives
            assert obj.area > 0 and obj.energy > 0 and obj.latency > 0

    def test_second_pass_resumes_from_store(self, tiny_space):
        explorer = Explorer(time_limit=TIME_LIMIT)
        explorer.evaluate_greedy(tiny_space.scenarios())
        again = explorer.evaluate_greedy(tiny_space.scenarios())
        assert all(r.from_store for r in again)


class TestGridDriver:
    def test_full_sweep_and_frontier(self, tiny_space):
        result = explore_grid(
            tiny_space, Explorer(time_limit=TIME_LIMIT)
        )
        assert result.driver == "grid"
        assert len(result.ok_results()) == 4
        assert result.ilp_solves == 6  # 2 scenarios x 1 stage + 2 x 2
        frontier = result.frontier()
        assert frontier
        # The frontier really is the non-dominated subset of all points.
        points = objective_matrix([r.objectives for r in result.ok_results()])
        mask = nondominated_mask(points)
        frontier_fps = {r.fingerprint for r in frontier}
        for r, keep in zip(result.ok_results(), mask):
            assert (r.fingerprint in frontier_fps) == bool(keep)
        assert result.hypervolume() > 0

    def test_ilp_improves_on_greedy_bound(self, tiny_space):
        explorer = Explorer(time_limit=TIME_LIMIT)
        greedy = explorer.evaluate_greedy(tiny_space.scenarios())
        ilp = explorer.evaluate_ilp(tiny_space.scenarios())
        for g, i in zip(greedy, ilp):
            assert i.objectives.area <= g.objectives.area + 1e-9

    def test_report_and_json_are_renderable(self, tiny_space):
        result = explore_grid(tiny_space, Explorer(time_limit=TIME_LIMIT))
        text = result.report()
        assert "non-dominated" in text
        payload = result.to_json()
        assert payload["driver"] == "grid"
        assert payload["frontier"]
        assert payload["hypervolume"] > 0


class TestResume:
    def test_grid_resumes_without_resolving(self, tiny_space, tmp_path):
        path = tmp_path / "runs.jsonl"
        first = explore_grid(
            tiny_space, Explorer(store=RunStore(path), time_limit=TIME_LIMIT)
        )
        assert first.ilp_solves > 0
        second = explore_grid(
            tiny_space, Explorer(store=RunStore(path), time_limit=TIME_LIMIT)
        )
        assert second.ilp_solves == 0
        assert second.resumed == 4
        # Rehydrated objective vectors are bit-identical to the originals.
        first_by_fp = {r.fingerprint: r for r in first.ok_results()}
        for r in second.ok_results():
            np.testing.assert_array_equal(
                r.objectives.vector(), first_by_fp[r.fingerprint].objectives.vector()
            )

    def test_partial_store_only_solves_the_gap(self, tiny_space, tmp_path):
        path = tmp_path / "runs.jsonl"
        scenarios = tiny_space.scenarios()
        explore_grid(
            scenarios[:2], Explorer(store=RunStore(path), time_limit=TIME_LIMIT)
        )
        rest = explore_grid(
            scenarios, Explorer(store=RunStore(path), time_limit=TIME_LIMIT)
        )
        assert rest.resumed == 2
        assert 0 < rest.ilp_solves < 6

    def test_failed_entries_are_retried(self, tiny_space, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        explorer = Explorer(store=store, time_limit=TIME_LIMIT)
        scenario = tiny_space.scenarios()[0]
        fingerprint = explorer.registry.fingerprint(scenario)
        from repro.dse.store import RunEntry

        store.record(
            RunEntry(fingerprint=fingerprint, tier=TIER_ILP,
                     scenario=scenario.payload(), status="error",
                     error="transient crash")
        )
        result = explorer.evaluate_ilp([scenario])[0]
        assert result.ok
        assert not result.from_store


class TestConstructionErrors:
    """A bad axis value fails its own scenario, never the sweep."""

    @pytest.fixture
    def mixed(self, tiny_space):
        from repro.dse.scenario import Scenario

        bad = Scenario(
            architecture=ArchitectureSpec(),
            workload=WorkloadSpec(network="Z", scale=0.1, profile="uniform"),
            formulation=FormulationSpec(),
        )
        return [bad, *tiny_space.scenarios()]

    def test_greedy_records_the_error_and_scores_the_rest(self, mixed):
        results = Explorer(time_limit=TIME_LIMIT).evaluate_greedy(mixed)
        assert not results[0].ok
        assert "Z" in results[0].error
        assert results[0].fingerprint.startswith("invalid-")
        assert all(r.ok for r in results[1:])

    def test_ilp_records_the_error_and_solves_the_rest(self, mixed):
        results = Explorer(time_limit=TIME_LIMIT).evaluate_ilp(mixed)
        assert not results[0].ok
        assert all(r.ok for r in results[1:])

    def test_adaptive_reports_greedy_failures_in_results(self, mixed):
        result = explore_adaptive(mixed, Explorer(time_limit=TIME_LIMIT))
        failed = [r for r in result.results if not r.ok]
        assert len(failed) == 1
        assert "Z" in failed[0].error
        assert len(result.results) + len(result.pruned) == 5

    def test_grid_deduplicates_duplicate_spellings(self, tiny_space):
        scenarios = tiny_space.scenarios()
        doubled = scenarios + scenarios
        result = explore_grid(doubled, Explorer(time_limit=TIME_LIMIT))
        assert len(result.results) == 4  # one row per instance
        assert result.ilp_solves == 6  # duplicates don't double-count

    def test_unmappable_instance_is_a_per_scenario_error(self, tiny_space):
        # C at scale 0.1 has fan-in 8 — an 8-wide pool leaves no slack,
        # a 4-wide pool is outright unmappable.
        from repro.dse.scenario import Scenario

        unmappable = Scenario(
            architecture=ArchitectureSpec(kind="homogeneous", dimension=4),
            workload=WorkloadSpec(network="C", scale=0.1, profile="uniform"),
            formulation=FormulationSpec(),
        )
        results = Explorer(time_limit=TIME_LIMIT).evaluate_ilp(
            [unmappable, *tiny_space.scenarios()]
        )
        assert not results[0].ok
        assert "fan-in" in results[0].error
        assert all(r.ok for r in results[1:])


class TestAdaptiveDriver:
    def test_budget_is_met_by_construction(self, tiny_space):
        grid = explore_grid(tiny_space, Explorer(time_limit=TIME_LIMIT))
        adaptive = explore_adaptive(
            tiny_space, Explorer(time_limit=TIME_LIMIT)
        )
        assert adaptive.driver == "adaptive"
        assert adaptive.ilp_solves <= grid.ilp_solves // 2
        assert adaptive.greedy_evaluations == 4

    def test_every_scenario_is_evaluated_or_pruned(self, tiny_space):
        adaptive = explore_adaptive(tiny_space, Explorer(time_limit=TIME_LIMIT))
        assert len(adaptive.results) + len(adaptive.pruned) == 4

    def test_adaptive_points_match_grid_points(self, tiny_space):
        """Whatever the adaptive driver does evaluate agrees with the grid."""
        grid = explore_grid(tiny_space, Explorer(time_limit=TIME_LIMIT))
        adaptive = explore_adaptive(
            tiny_space, Explorer(time_limit=TIME_LIMIT)
        )
        grid_by_fp = {r.fingerprint: r for r in grid.ok_results()}
        for r in adaptive.ok_results():
            assert r.fingerprint in grid_by_fp

    def test_invalid_knobs_rejected(self, tiny_space):
        explorer = Explorer(time_limit=TIME_LIMIT)
        with pytest.raises(ValueError, match="keep"):
            explore_adaptive(tiny_space, explorer, keep=0.0)
        with pytest.raises(ValueError, match="budget_fraction"):
            explore_adaptive(tiny_space, explorer, budget_fraction=1.5)
        with pytest.raises(ValueError, match="rung"):
            explore_adaptive(tiny_space, explorer, max_rungs=0)
        with pytest.raises(ValueError, match="prune_slack"):
            explore_adaptive(tiny_space, explorer, prune_slack=1.0)
