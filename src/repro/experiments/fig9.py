"""Fig. 9 reproduction: profile-guided vs. static optimization.

Protocol (paper §V-H): map each network area-then-SNU-optimally, then
re-optimize placement with PGO using a small profile split (1% of the
SmartPixel-like dataset).  Both mappings are evaluated on the held-out
99%: the figure compares expected inter-crossbar spike (packet) counts
with error bands over evaluation samples, plus solver effort.

Expected shape: PGO reduces global packets a further 0.5-14.8% below the
best SNU solution while spending 1-3 orders of magnitude less solver time
(silent neurons drop out of the PGO objective), with low variance across
evaluation data confirming spiking regularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mapping.metrics import improvement_pct
from ..profile.profiler import collect_profile, evaluate_packets
from ..profile.smartpixel import SmartPixelConfig, generate_dataset, split_dataset
from .common import (
    ExhibitResult,
    area_optimize,
    het_problem,
    pgo_optimize,
    snu_optimize,
)
from .networks import NETWORK_NAMES, paper_network
from .runner import ExperimentConfig, format_table


@dataclass(frozen=True)
class Fig9Row:
    """One network's SNU-vs-PGO packet comparison."""

    network: str
    snu_packets_mean: float
    snu_packets_std: float
    pgo_packets_mean: float
    pgo_packets_std: float
    snu_det: float
    pgo_det: float
    snu_wall: float
    pgo_wall: float

    @property
    def packet_gain(self) -> float:
        if self.snu_packets_mean == 0:
            return 0.0
        return improvement_pct(self.snu_packets_mean, self.pgo_packets_mean)

    @property
    def solver_speedup(self) -> float:
        """SNU/PGO solver-effort ratio (>1 means PGO is cheaper)."""
        return self.snu_det / max(self.pgo_det, 1e-9)


def _pixel_grid_for(num_inputs: int) -> tuple[int, int]:
    """Largest rows x cols grid not exceeding the input-neuron count."""
    side = max(2, int(math.floor(math.sqrt(num_inputs))))
    return side, side


def run_network(name: str, config: ExperimentConfig) -> Fig9Row:
    network = paper_network(name, scale=config.scale)
    problem = het_problem(network, config)

    rows, cols = _pixel_grid_for(len(network.input_ids()))
    dataset = generate_dataset(
        SmartPixelConfig(
            rows=rows,
            cols=cols,
            num_samples=config.num_samples,
            seed=config.seed,
        )
    )
    profile_samples, eval_samples = split_dataset(
        dataset,
        profile_fraction=config.profile_fraction,
        seed=config.seed,
        min_profile=3,
    )
    profile = collect_profile(
        network, profile_samples, window=config.sim_window, method=config.encoding
    )

    area_opt = area_optimize(problem, config)
    snu_opt = snu_optimize(problem, area_opt.mapping, config)
    pgo_opt = pgo_optimize(problem, snu_opt.mapping, profile, config)
    assert pgo_opt.mapping.area() <= snu_opt.mapping.area() + 1e-9

    snu_eval = evaluate_packets(
        snu_opt.mapping, eval_samples,
        window=config.sim_window, method=config.encoding,
    )
    pgo_eval = evaluate_packets(
        pgo_opt.mapping, eval_samples,
        window=config.sim_window, method=config.encoding,
    )

    return Fig9Row(
        network=name,
        snu_packets_mean=snu_eval.mean,
        snu_packets_std=snu_eval.std,
        pgo_packets_mean=pgo_eval.mean,
        pgo_packets_std=pgo_eval.std,
        snu_det=snu_opt.det_time,
        pgo_det=pgo_opt.det_time,
        snu_wall=snu_opt.solve.wall_time,
        pgo_wall=pgo_opt.solve.wall_time,
    )


def run_fig9(config: ExperimentConfig) -> ExhibitResult:
    rows = [run_network(name, config) for name in NETWORK_NAMES]
    table_rows = [
        (
            r.network,
            round(r.snu_packets_mean, 1),
            round(r.snu_packets_std, 1),
            round(r.pgo_packets_mean, 1),
            round(r.pgo_packets_std, 1),
            round(r.packet_gain, 1),
            round(r.solver_speedup, 2),
        )
        for r in rows
    ]
    headers = [
        "Net",
        "SNU pkts/sample",
        "+-",
        "PGO pkts/sample",
        "+-",
        "Gain %",
        "PGO det speedup x",
    ]
    note = (
        "paper shape: 0.5-14.8% packet reduction over best-SNU at 1-3 "
        "orders less solver effort; small error bands confirm regularity"
    )
    return ExhibitResult(
        report=format_table(headers, table_rows) + "\n" + note,
        rows=table_rows,
    )
