"""Mapping-aware latency analysis.

Synaptic delays are logical timesteps, but a *mapped* network also pays
router latency: a spike crossing from crossbar ``j`` to ``j'`` traverses
``hops(j, j')`` mesh links.  This module quantifies that cost:

- :func:`effective_delays` — per-synapse delay including NoC transit
  (local synapses are unchanged);
- :func:`annotate_latency` — a copy of the network with those delays
  baked in, so the ordinary simulator executes the *timed* mapped system;
- :func:`critical_path_latency` — static worst-case input-to-output
  latency (longest path through the acyclic condensation, weighted by
  effective delays);
- :func:`latency_report` — one-line comparison of logical vs. mapped
  latency for a mapping.

This gives the reproduction a metric the paper leaves implicit: SNU/PGO
reduce *how many* packets cross the chip; this measures how much *later*
spikes arrive because of where neurons were placed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import networkx as nx

from ..mca.noc import MeshNoC
from ..snn.network import Network
from .solution import Mapping


def effective_delays(
    mapping: Mapping,
    noc: MeshNoC | None = None,
    cycles_per_hop: int = 1,
) -> dict[tuple[int, int], int]:
    """Per-synapse delay after adding router transit time.

    A synapse whose endpoints share a crossbar keeps its logical delay;
    a global synapse pays ``hops * cycles_per_hop`` extra timesteps.
    """
    if cycles_per_hop < 0:
        raise ValueError("cycles_per_hop must be non-negative")
    network = mapping.problem.network
    mesh = noc or MeshNoC(mapping.problem.num_slots)
    out: dict[tuple[int, int], int] = {}
    for syn in network.synapses():
        src = mapping.assignment[syn.pre]
        dst = mapping.assignment[syn.post]
        transit = 0 if src == dst else mesh.hops(src, dst) * cycles_per_hop
        out[(syn.pre, syn.post)] = syn.delay + transit
    return out


def annotate_latency(
    mapping: Mapping,
    noc: MeshNoC | None = None,
    cycles_per_hop: int = 1,
) -> Network:
    """Network copy with placement-induced delays baked into synapses."""
    delays = effective_delays(mapping, noc, cycles_per_hop)
    network = mapping.problem.network
    annotated = network.copy(f"{network.name}-timed")
    for syn in network.synapses():
        annotated.replace_synapse(
            replace(syn, delay=delays[(syn.pre, syn.post)])
        )
    return annotated


def critical_path_latency(
    mapping: Mapping,
    noc: MeshNoC | None = None,
    cycles_per_hop: int = 1,
) -> int:
    """Worst-case feed-forward latency in timesteps.

    Longest path through the strongly-connected-component condensation,
    edge-weighted by the *maximum* effective delay between the two
    components (recurrent loops are contracted; their internal latency is
    unbounded by definition and excluded, as in standard static timing).
    """
    delays = effective_delays(mapping, noc, cycles_per_hop)
    graph = mapping.problem.network.to_networkx()
    condensed = nx.condensation(graph)
    component_of = condensed.graph["mapping"]
    weighted = nx.DiGraph()
    weighted.add_nodes_from(condensed.nodes)
    for (pre, post), delay in delays.items():
        a, b = component_of[pre], component_of[post]
        if a == b:
            continue
        prev = weighted.edges.get((a, b), {}).get("weight", 0)
        if delay > prev:
            weighted.add_edge(a, b, weight=delay)
    if weighted.number_of_edges() == 0:
        return 0
    return int(nx.dag_longest_path_length(weighted, weight="weight"))


@dataclass(frozen=True)
class LatencyReport:
    """Logical vs. mapped latency of one placement."""

    logical_critical_path: int  # delays only (ideal single-crossbar chip)
    mapped_critical_path: int  # delays + NoC transit
    worst_synapse_transit: int  # largest single-hop penalty added

    @property
    def slowdown(self) -> float:
        if self.logical_critical_path == 0:
            return 1.0
        return self.mapped_critical_path / self.logical_critical_path


def latency_report(
    mapping: Mapping,
    noc: MeshNoC | None = None,
    cycles_per_hop: int = 1,
) -> LatencyReport:
    """Compute the latency comparison for a mapping."""
    network = mapping.problem.network
    mesh = noc or MeshNoC(mapping.problem.num_slots)
    mapped = critical_path_latency(mapping, mesh, cycles_per_hop)
    delays = effective_delays(mapping, mesh, cycles_per_hop)
    worst_extra = 0
    for syn in network.synapses():
        extra = delays[(syn.pre, syn.post)] - syn.delay
        worst_extra = max(worst_extra, extra)
    # Logical latency = mapped latency with zero-cost routing.
    logical = critical_path_latency(mapping, mesh, cycles_per_hop=0)
    return LatencyReport(
        logical_critical_path=logical,
        mapped_critical_path=mapped,
        worst_synapse_transit=worst_extra,
    )
