"""SNN-to-MCA mapping: the paper's ILP formulations (area with axon
sharing, SNU route minimization, PGO packet minimization), the SpikeHard
MCC baseline, approximate baselines (greedy, KL, spectral), and the staged
optimization pipeline."""

from .axon_sharing import (
    AreaModel,
    FormulationOptions,
    build_area_model,
    canonicalize_mapping,
)
from .delta import DeltaEvaluator
from .greedy import greedy_first_fit
from .hierarchical import HierarchicalOptions, hierarchical_map, partition_regions
from .incremental import RemapOptions, RemapResult, remap_incremental
from .io import (
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
)
from .latency import (
    LatencyReport,
    annotate_latency,
    critical_path_latency,
    effective_delays,
    latency_report,
)
from .lns import LnsOptions, LnsResult, lns_area
from .local_search import LocalSearchOptions, local_search
from .kl_partition import kl_refine
from .metrics import MappingMetrics, evaluate_mapping, improvement_pct
from .precision import (
    PrecisionAreaModel,
    PrecisionSpec,
    neuron_slices,
    precision_area_overhead,
    validate_sliced,
)
from .pgo import SpikeProfile, build_pgo_model, expected_global_packets
from .fingerprint import (
    architecture_fingerprint,
    network_fingerprint,
    options_fingerprint,
    problem_fingerprint,
)
from .pipeline import MappingPipeline, PipelineResult, SolverFactory, StageRecord
from .problem import MappingProblem
from .snu import RouteModel, RouteModelOptions, RouteObjective, build_snu_model
from .solution import Mapping
from .spectral import spectral_mapping
from .spikehard import (
    MCC,
    SpikeHardPacker,
    SpikeHardResult,
    form_mccs,
    iterate_spikehard,
    make_mcc,
    singleton_mccs,
)

__all__ = [
    "AreaModel",
    "DeltaEvaluator",
    "FormulationOptions",
    "MCC",
    "Mapping",
    "MappingMetrics",
    "RemapOptions",
    "RemapResult",
    "remap_incremental",
    "MappingPipeline",
    "MappingProblem",
    "PipelineResult",
    "PrecisionAreaModel",
    "PrecisionSpec",
    "neuron_slices",
    "precision_area_overhead",
    "validate_sliced",
    "RouteModel",
    "RouteModelOptions",
    "RouteObjective",
    "SpikeHardPacker",
    "SpikeHardResult",
    "SpikeProfile",
    "SolverFactory",
    "StageRecord",
    "architecture_fingerprint",
    "network_fingerprint",
    "options_fingerprint",
    "problem_fingerprint",
    "build_area_model",
    "build_pgo_model",
    "build_snu_model",
    "canonicalize_mapping",
    "evaluate_mapping",
    "expected_global_packets",
    "form_mccs",
    "HierarchicalOptions",
    "LatencyReport",
    "LnsOptions",
    "LnsResult",
    "LocalSearchOptions",
    "annotate_latency",
    "critical_path_latency",
    "effective_delays",
    "latency_report",
    "lns_area",
    "greedy_first_fit",
    "hierarchical_map",
    "load_mapping",
    "local_search",
    "mapping_from_dict",
    "mapping_to_dict",
    "partition_regions",
    "save_mapping",
    "improvement_pct",
    "iterate_spikehard",
    "kl_refine",
    "make_mcc",
    "singleton_mccs",
    "spectral_mapping",
]
