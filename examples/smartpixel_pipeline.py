#!/usr/bin/env python
"""SmartPixel end-to-end pipeline: data -> EONS training -> map -> PGO.

Reproduces the paper's full application story on a laptop-sized instance:

1. synthesize SmartPixel-like detector frames (tracks in a pixel array),
2. train a small SNN classifier with the EONS evolutionary optimizer,
3. map it onto a heterogeneous crossbar pool (area -> SNU),
4. profile spiking activity on 1% of the data and run PGO,
5. evaluate both mappings' inter-crossbar packets on the held-out 99%.

Run:  python examples/smartpixel_pipeline.py
(takes a couple of minutes; shrink GENERATIONS / NUM_SAMPLES to go faster)
"""

from repro.ilp import HighsBackend, HighsOptions
from repro.mapping import (
    AreaModel,
    MappingProblem,
    build_pgo_model,
    build_snu_model,
    greedy_first_fit,
)
from repro.mca import heterogeneous_architecture
from repro.profile import (
    SmartPixelConfig,
    collect_profile,
    evaluate_packets,
    generate_dataset,
    split_dataset,
)
from repro.snn import Eons, EonsConfig, Simulator, decode_rate, encode_frame

PIXELS = 4  # 4x4 sensor
WINDOW = 16  # spike-train window per frame
NUM_SAMPLES = 150
GENERATIONS = 6


def make_fitness(samples):
    """Classification accuracy of a genome over the training samples."""

    def fitness(network) -> float:
        input_ids = network.input_ids()
        output_ids = network.output_ids()
        sim = Simulator(network)
        correct = 0
        for sample in samples:
            spikes = encode_frame(sample.frame, input_ids, WINDOW)
            result = sim.run(WINDOW, input_spikes=spikes)
            if decode_rate(result.spike_counts, output_ids) == sample.label:
                correct += 1
        return correct / len(samples)

    return fitness


def main() -> None:
    # 1. Data.
    dataset = generate_dataset(
        SmartPixelConfig(rows=PIXELS, cols=PIXELS, num_samples=NUM_SAMPLES, seed=3)
    )
    train, rest = dataset[:40], dataset[40:]
    print(f"dataset: {len(dataset)} frames ({PIXELS}x{PIXELS})")

    # 2. EONS training (small budget; this demonstrates the path, not SOTA).
    eons = Eons(
        EonsConfig(
            population_size=12,
            num_inputs=PIXELS * PIXELS,
            num_outputs=3,
            initial_hidden=10,
            initial_synapses=60,
            max_neurons=48,
            seed=7,
        )
    )
    evolved = eons.evolve(make_fitness(train), generations=GENERATIONS)
    network = evolved.best
    print(f"EONS best accuracy {evolved.best_fitness:.2f} "
          f"({network.num_neurons} neurons, {network.num_synapses} synapses)")

    # 3. Map: area ILP then SNU over the frozen crossbars.
    problem = MappingProblem(network, heterogeneous_architecture(network.num_neurons))
    handle = AreaModel(problem)
    area_res = HighsBackend(HighsOptions(time_limit=10)).solve(
        handle.model, warm_start=handle.warm_start_from(greedy_first_fit(problem))
    )
    area_mapping = handle.extract_mapping(area_res)
    snu_handle = build_snu_model(problem, area_mapping)
    snu_res = HighsBackend(HighsOptions(time_limit=8)).solve(
        snu_handle.model, warm_start=snu_handle.warm_start_from(area_mapping)
    )
    snu_mapping = snu_handle.extract_mapping(snu_res)
    print(f"mapped: {snu_mapping.summary()}")

    # 4. PGO on a small profile split.
    profile_samples, eval_samples = split_dataset(rest, 0.05, seed=1)
    profile = collect_profile(network, profile_samples, window=WINDOW)
    print(f"profile: {len(profile_samples)} samples, "
          f"{profile.total_spikes} spikes, "
          f"{profile.active_fraction():.0%} neurons active")
    pgo_handle = build_pgo_model(problem, snu_mapping, profile)
    pgo_res = HighsBackend(HighsOptions(time_limit=8)).solve(
        pgo_handle.model, warm_start=pgo_handle.warm_start_from(snu_mapping)
    )
    pgo_mapping = pgo_handle.extract_mapping(pgo_res)

    # 5. Held-out evaluation (the paper's Fig. 9 protocol).
    snu_eval = evaluate_packets(snu_mapping, eval_samples, window=WINDOW)
    pgo_eval = evaluate_packets(pgo_mapping, eval_samples, window=WINDOW)
    print(f"\ninter-crossbar packets per frame (held-out {len(eval_samples)}):")
    print(f"  SNU : {snu_eval.mean:7.2f} +- {snu_eval.std:.2f}")
    print(f"  PGO : {pgo_eval.mean:7.2f} +- {pgo_eval.std:.2f}")
    if snu_eval.mean > 0:
        gain = 100.0 * (snu_eval.mean - pgo_eval.mean) / snu_eval.mean
        print(f"  PGO packet reduction: {gain:.1f}%  "
              f"(solver: SNU {snu_res.wall_time:.2f}s vs PGO {pgo_res.wall_time:.2f}s)")


if __name__ == "__main__":
    main()
