"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.snn.generators import random_network
from repro.snn.io import save_network


@pytest.fixture
def network_file(tmp_path):
    net = random_network(14, 28, seed=44, max_fan_in=6, name="cli-net")
    path = tmp_path / "net.json"
    save_network(net, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self):
        args = build_parser().parse_args(["map", "net.json"])
        assert args.output == "mapping.json"
        assert not args.homogeneous


class TestInspect:
    def test_prints_statistics(self, network_file, capsys):
        assert main(["inspect", str(network_file)]) == 0
        out = capsys.readouterr().out
        assert "neurons" in out
        assert "gini (incoming)" in out
        assert "depth (synapses)" in out


class TestMapAndSimulate:
    def test_map_writes_valid_mapping(self, network_file, tmp_path, capsys):
        out_path = tmp_path / "mapping.json"
        code = main(
            ["map", str(network_file), "-o", str(out_path), "--time-limit", "5"]
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["assignment"]
        assert "area stage" in capsys.readouterr().out

    def test_map_homogeneous_with_snu(self, network_file, tmp_path, capsys):
        out_path = tmp_path / "mapping.json"
        code = main(
            [
                "map", str(network_file),
                "-o", str(out_path),
                "--homogeneous", "--dimension", "8",
                "--snu", "--time-limit", "5",
            ]
        )
        assert code == 0
        assert "SNU stage" in capsys.readouterr().out

    def test_simulate_round_trip(self, network_file, tmp_path, capsys):
        out_path = tmp_path / "mapping.json"
        main(["map", str(network_file), "-o", str(out_path), "--time-limit", "4"])
        code = main(["simulate", str(out_path), "--duration", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "global packets" in out
        assert "energy estimate" in out


class TestExhibitsForwarding:
    def test_table2_via_cli(self, capsys):
        assert main(["exhibits", "--exhibit", "table2"]) == 0
        assert "32x32" in capsys.readouterr().out
