"""Persistent, resumable run store for exploration sweeps.

One JSONL file, one JSON object per line, append-only.  Each entry
records a finished evaluation keyed by ``(scenario fingerprint, tier)``
— ``tier`` distinguishes the adaptive driver's cheap greedy bound from a
real ILP evaluation, so a resumed sweep can trust an ILP entry but will
still upgrade a greedy one.

Append-only JSONL is deliberately crash-tolerant: a process killed
mid-write leaves at most one torn final line, which :meth:`RunStore.load`
skips (along with entries from older schema versions).  Re-evaluations
simply append again; the *last* entry per key wins, so the store doubles
as a history of the sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Bump when the entry schema changes; older entries are ignored on load.
STORE_FORMAT = 1

TIER_GREEDY = "greedy"
TIER_ILP = "ilp"


@dataclass(frozen=True)
class RunEntry:
    """One persisted evaluation."""

    fingerprint: str
    tier: str
    scenario: dict  # Scenario.payload() — for human/tool inspection
    status: str  # "ok" | "error"
    objectives: dict | None = None  # ObjectivePoint.as_dict() when ok
    assignment: dict | None = None  # neuron -> slot (stringed keys) when ok
    solves: int = 0  # ILP solves this evaluation spent
    wall_time: float = 0.0
    error: str | None = None
    meta: dict = field(default_factory=dict)  # driver breadcrumbs (rung, ...)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def key(self) -> tuple[str, str]:
        return (self.fingerprint, self.tier)

    def to_json(self) -> dict:
        return {
            "format": STORE_FORMAT,
            "fingerprint": self.fingerprint,
            "tier": self.tier,
            "scenario": self.scenario,
            "status": self.status,
            "objectives": self.objectives,
            "assignment": self.assignment,
            "solves": self.solves,
            "wall_time": self.wall_time,
            "error": self.error,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RunEntry":
        return cls(
            fingerprint=payload["fingerprint"],
            tier=payload["tier"],
            scenario=payload.get("scenario") or {},
            status=payload["status"],
            objectives=payload.get("objectives"),
            assignment=payload.get("assignment"),
            solves=int(payload.get("solves", 0)),
            wall_time=float(payload.get("wall_time", 0.0)),
            error=payload.get("error"),
            meta=payload.get("meta") or {},
        )


class RunStore:
    """Append-only JSONL store of :class:`RunEntry` records.

    ``path=None`` keeps everything in memory (ephemeral sweeps and
    tests); otherwise entries are flushed line-by-line so a concurrent
    reader — or the next resumed run — sees every finished scenario.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: dict[tuple[str, str], RunEntry] = {}
        self._loaded_lines = 0
        self._skipped_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        assert self.path is not None
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    if payload.get("format") != STORE_FORMAT:
                        raise ValueError("stale store format")
                    entry = RunEntry.from_json(payload)
                except (ValueError, KeyError, TypeError):
                    self._skipped_lines += 1  # torn tail line or old schema
                    continue
                self._entries[entry.key] = entry
                self._loaded_lines += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._entries

    def get(self, fingerprint: str, tier: str = TIER_ILP) -> RunEntry | None:
        return self._entries.get((fingerprint, tier))

    def entries(self) -> list[RunEntry]:
        return list(self._entries.values())

    def completed(self, tier: str = TIER_ILP) -> dict[str, RunEntry]:
        """fingerprint -> entry for every *successful* evaluation at a tier.

        Failed entries are deliberately excluded so a resumed sweep
        retries them — an error is not an answer worth pinning.
        """
        return {
            entry.fingerprint: entry
            for entry in self._entries.values()
            if entry.tier == tier and entry.ok
        }

    def record(self, entry: RunEntry) -> None:
        """Persist one evaluation (last write per key wins)."""
        self._entries[entry.key] = entry
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(entry.to_json(), sort_keys=True, separators=(",", ":"))
                )
                handle.write("\n")
                handle.flush()

    @property
    def skipped_lines(self) -> int:
        """Unreadable lines encountered on load (torn tails, old formats)."""
        return self._skipped_lines
