"""BatchMapper behavior: serial identity, pooling, failure isolation.

The fixtures (see tests/conftest.py) keep instances tiny and budgets tight
so the default run covers pools and portfolios in seconds; the paranoid
wider-pool variant opts in via the ``slow`` marker.
"""

from __future__ import annotations

import pytest

from repro.batch.engine import JOB_ERROR, JOB_OK, BatchJob, BatchMapper
from repro.mapping.pipeline import MappingPipeline
from repro.mca.architecture import custom_architecture, homogeneous_architecture
from repro.mca.crossbar import CrossbarType
from repro.snn.generators import random_network

pytestmark = pytest.mark.batch


def _serial_reference(jobs):
    """The plain serial loop the engine's jobs=1 mode must match."""
    results = {}
    for job in jobs:
        pipeline = MappingPipeline(
            job.build_problem(),
            area_time_limit=job.area_time_limit,
            route_time_limit=job.route_time_limit,
            formulation=job.formulation,
        )
        results[job.name] = pipeline.run(stages=job.stages, profile=job.profile)
    return results


class TestSerialIdentity:
    def test_jobs_1_matches_serial_loop_bit_for_bit(self, batch_jobs):
        reference = _serial_reference(batch_jobs)
        result = BatchMapper(jobs=1).map_all(batch_jobs)
        for record in result:
            assert record.ok
            ref = reference[record.name]
            assert list(record.stages) == list(ref.stages)
            for stage_name, stage in record.stages.items():
                ref_stage = ref.stages[stage_name]
                assert stage.mapping.assignment == ref_stage.mapping.assignment
                assert stage.metrics == ref_stage.metrics
                assert stage.det_time == ref_stage.det_time

    def test_records_keep_submission_order(self, batch_jobs):
        result = BatchMapper(jobs=1).map_all(batch_jobs)
        assert [r.name for r in result] == [j.name for j in batch_jobs]

    def test_stage_records_mirror_pipeline_shape(self, batch_jobs):
        record = BatchMapper(jobs=1).map_all(batch_jobs[:1]).records[0]
        assert list(record.stages) == ["area", "snu"]
        final = record.final()
        assert final.name == "snu"
        assert final.mapping.is_valid()
        assert final.metrics.area == final.mapping.area()
        assert record.det_time == pytest.approx(
            sum(s.det_time for s in record.stages.values())
        )


class TestPooledExecution:
    def test_pool_matches_serial_results(self, batch_jobs):
        serial = BatchMapper(jobs=1).map_all(batch_jobs)
        pooled = BatchMapper(jobs=2).map_all(batch_jobs)
        for ser, par in zip(serial, pooled):
            assert par.ok, par.error
            assert par.name == ser.name
            for stage_name, stage in ser.stages.items():
                assert (
                    par.stages[stage_name].mapping.assignment
                    == stage.mapping.assignment
                )

    def test_failing_job_does_not_poison_the_batch(self, batch_jobs):
        # Fan-in 6 into a pool of 4-input slots: problem validation fails
        # inside the worker, the sibling jobs must come back untouched.
        hub = random_network(8, 20, seed=9, max_fan_in=6, name="hub")
        assert max(hub.fan_in(i) for i in hub.neuron_ids()) > 4
        bad = BatchJob(
            name="bad",
            network=hub,
            architecture=custom_architecture([(CrossbarType(4, 4), 8)]),
            stages=("area",),
            area_time_limit=1.0,
        )
        mixed = [batch_jobs[0], bad, batch_jobs[1]]
        result = BatchMapper(jobs=2).map_all(mixed)
        by_name = {r.name: r for r in result}
        assert by_name["bad"].status == JOB_ERROR
        assert "fan-in" in by_name["bad"].error
        assert by_name[batch_jobs[0].name].ok
        assert by_name[batch_jobs[1].name].ok
        with pytest.raises(ValueError, match="no stages"):
            by_name["bad"].final()

    def test_failed_records_report_in_result_helpers(self, batch_jobs):
        hub = random_network(8, 20, seed=9, max_fan_in=6, name="hub")
        bad = BatchJob(
            name="bad",
            network=hub,
            architecture=custom_architecture([(CrossbarType(4, 4), 8)]),
            stages=("area",),
        )
        result = BatchMapper(jobs=1).map_all([bad, batch_jobs[0]])
        assert [r.name for r in result.failed()] == ["bad"]
        assert [r.name for r in result.succeeded()] == [batch_jobs[0].name]
        assert "error" in result.report()


class TestJobValidation:
    def test_unknown_stage_rejected_at_construction(self, batch_jobs):
        job = batch_jobs[0]
        with pytest.raises(ValueError, match="unknown stages"):
            BatchJob(job.name, job.network, job.architecture, stages=("warp",))

    def test_pgo_requires_profile(self, batch_jobs):
        job = batch_jobs[0]
        with pytest.raises(ValueError, match="profile"):
            BatchJob(job.name, job.network, job.architecture,
                     stages=("area", "snu", "pgo"))

    def test_duplicate_job_names_rejected(self, batch_jobs):
        with pytest.raises(ValueError, match="unique"):
            BatchMapper(jobs=1).map_all([batch_jobs[0], batch_jobs[0]])

    def test_pgo_stage_runs_through_engine(self, batch_jobs):
        base = batch_jobs[0]
        counts = {i: (i % 3) for i in base.network.neuron_ids()}
        job = BatchJob(
            name="pgo-job",
            network=base.network,
            architecture=base.architecture,
            stages=("area", "snu", "pgo"),
            profile=counts,
            area_time_limit=2.0,
            route_time_limit=2.0,
        )
        record = BatchMapper(jobs=1).map_all([job]).records[0]
        assert record.ok, record.error
        assert list(record.stages) == ["area", "snu", "pgo"]
        assert record.final().metrics.global_packets is not None


@pytest.mark.slow
class TestPooledAtScale:
    def test_wider_pool_matches_serial(self):
        jobs = []
        for i in range(8):
            net = random_network(16, 32, seed=500 + i, max_fan_in=6)
            arch = homogeneous_architecture(net.num_neurons, dimension=8)
            jobs.append(
                BatchJob(f"s{i}", net, arch, stages=("area", "snu"),
                         area_time_limit=5.0, route_time_limit=4.0)
            )
        serial = BatchMapper(jobs=1).map_all(jobs)
        pooled = BatchMapper(jobs=4).map_all(jobs)
        for ser, par in zip(serial, pooled):
            assert par.ok
            assert (
                par.final().mapping.assignment == ser.final().mapping.assignment
            )
        assert all(r.status == JOB_OK for r in pooled)
