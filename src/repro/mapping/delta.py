"""Incremental (delta) evaluation of the mapping objectives.

Local search and LNS try thousands of candidate moves per round; paying a
full O(V + E) re-evaluation of ``(area, global routes)`` per candidate is
what made refinement the wall-clock hot spot.  :class:`DeltaEvaluator`
maintains the objective under relocate moves in O(affected) time:

- per-slot member sets and *refcounted* axon-input tables
  (``slot -> {source -> number of consumers on that slot}``), so a slot's
  distinct-input count — the axon-sharing quantity — is ``len`` of a dict;
- a transposed ``source -> slots that read it`` index, so re-homing a
  source flips the locality of exactly the affected routes;
- the global-route total updated per created/deleted/re-homed route
  endpoint, and the area total re-summed only when the *set* of occupied
  slots changes (and then in ascending-slot order, so the float matches
  :meth:`Mapping.area` bit for bit).

A single :meth:`move` costs O(fan-in + slots-reading-the-neuron); swaps,
drains and downsizes are sequences of moves.  ``verify=True`` re-derives
everything from scratch after every move and asserts equality — the knob
the property tests and the search's paranoid mode use.
"""

from __future__ import annotations

from typing import Mapping as MappingT

from .problem import MappingProblem
from .solution import Mapping


class DeltaEvaluator:
    """O(affected)-time maintenance of ``(area, global_routes)``."""

    __slots__ = (
        "problem",
        "verify",
        "_slot_of",
        "_members",
        "_in_count",
        "_src_slots",
        "_global_total",
        "_occupied",
        "_area",
    )

    def __init__(
        self,
        problem: MappingProblem,
        assignment: MappingT[int, int],
        verify: bool = False,
    ) -> None:
        self.problem = problem
        self.verify = verify
        self._slot_of: dict[int, int] = dict(assignment)
        self._members: dict[int, set[int]] = {}
        self._in_count: dict[int, dict[int, int]] = {}
        self._src_slots: dict[int, set[int]] = {}
        for i, j in self._slot_of.items():
            self._members.setdefault(j, set()).add(i)
            counts = self._in_count.setdefault(j, {})
            for k in problem.preds(i):
                if k in counts:
                    counts[k] += 1
                else:
                    counts[k] = 1
                    self._src_slots.setdefault(k, set()).add(j)
        self._global_total = sum(
            1
            for j, counts in self._in_count.items()
            for k in counts
            if self._slot_of[k] != j
        )
        self._occupied = {j for j, group in self._members.items() if group}
        self._area: float | None = None

    @classmethod
    def from_mapping(cls, mapping: Mapping, verify: bool = False) -> "DeltaEvaluator":
        return cls(mapping.problem, mapping.assignment, verify=verify)

    # ------------------------------------------------------------------
    # reads (all O(1) or O(result))
    # ------------------------------------------------------------------
    def slot_of(self, neuron: int) -> int:
        return self._slot_of[neuron]

    def assignment(self) -> dict[int, int]:
        """Copy of the current placement."""
        return dict(self._slot_of)

    def occupied_slots(self) -> frozenset[int]:
        """Slots currently hosting at least one neuron (a snapshot —
        safe to iterate while issuing moves)."""
        return frozenset(self._occupied)

    def members_of(self, slot: int) -> frozenset[int]:
        return frozenset(self._members.get(slot, ()))

    def outputs_used(self, slot: int) -> int:
        return len(self._members.get(slot, ()))

    def inputs_used(self, slot: int) -> int:
        """Distinct axonal inputs the slot consumes (axon sharing counted)."""
        return len(self._in_count.get(slot, ()))

    def slot_feasible(self, slot: int) -> bool:
        """Capacity check of one slot against its crossbar spec, O(1)."""
        used = self.outputs_used(slot)
        if used == 0:
            return True
        spec = self.problem.architecture.slot(slot)
        return used <= spec.outputs and self.inputs_used(slot) <= spec.inputs

    def area(self) -> float:
        """Objective 8 over the current placement (cached between
        occupancy changes; ascending-slot summation matches Mapping.area)."""
        if self._area is None:
            arch = self.problem.architecture
            self._area = sum(arch.slot(j).area for j in sorted(self._occupied))
        return self._area

    def global_routes(self) -> int:
        """Objective 11 over the current placement."""
        return self._global_total

    def score(self) -> tuple[float, int]:
        """The lexicographic (area, global routes) objective."""
        return (self.area(), self._global_total)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def move(self, neuron: int, dst: int) -> int:
        """Relocate ``neuron`` to slot ``dst``; returns its previous slot.

        Updates every derived quantity in O(fan-in + #slots reading the
        neuron).  Self-loops (a neuron feeding itself) are handled: the
        membership updates run against the pre-move placement, the
        source-locality flip against the post-move one.
        """
        src = self._slot_of[neuron]
        if dst == src:
            return src
        preds = self.problem.preds(neuron)

        # 1. Remove from src: membership + input refcounts.
        group = self._members[src]
        group.discard(neuron)
        if not group:
            self._occupied.discard(src)
            self._area = None
        src_counts = self._in_count[src]
        for k in preds:
            count = src_counts[k]
            if count == 1:
                del src_counts[k]
                self._src_slots[k].discard(src)
                if self._slot_of[k] != src:
                    self._global_total -= 1
            else:
                src_counts[k] = count - 1

        # 2. Re-home neuron as a *source*: every surviving route endpoint
        #    that reads it flips locality relative to (src -> dst).
        for j in self._src_slots.get(neuron, ()):
            self._global_total += (j != dst) - (j != src)
        self._slot_of[neuron] = dst

        # 3. Add to dst: membership + input refcounts.
        new_group = self._members.setdefault(dst, set())
        if not new_group:
            self._occupied.add(dst)
            self._area = None
        new_group.add(neuron)
        dst_counts = self._in_count.setdefault(dst, {})
        for k in preds:
            if k in dst_counts:
                dst_counts[k] += 1
            else:
                dst_counts[k] = 1
                self._src_slots.setdefault(k, set()).add(dst)
                if self._slot_of[k] != dst:
                    self._global_total += 1

        if self.verify:
            self.assert_consistent()
        return src

    def to_mapping(self) -> Mapping:
        return Mapping(self.problem, dict(self._slot_of))

    # ------------------------------------------------------------------
    # verification (test / debug only — full re-derivation)
    # ------------------------------------------------------------------
    def assert_consistent(self) -> None:
        """Assert every incremental quantity equals a from-scratch one."""
        full = Mapping(self.problem, dict(self._slot_of))
        assert self.area() == full.area(), (
            f"delta area {self.area()} != full {full.area()}"
        )
        assert self._global_total == full.global_routes(), (
            f"delta global routes {self._global_total} "
            f"!= full {full.global_routes()}"
        )
        assert self._occupied == set(full.enabled_slots())
        for j in self._occupied:
            assert self.members_of(j) == full.neurons_on(j), f"slot {j} members"
            assert (
                frozenset(self._in_count.get(j, ())) == full.axon_inputs(j)
            ), f"slot {j} inputs"
            assert self.inputs_used(j) == len(full.axon_inputs(j))
