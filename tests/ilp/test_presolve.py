"""Tests for the ILP presolve reductions."""

import pytest

from repro.ilp.expr import lin_sum
from repro.ilp.highs_backend import HighsBackend
from repro.ilp.model import Model
from repro.ilp.presolve import (
    InfeasibleModelError,
    extend_solution,
    presolve,
)


class TestSingletonRows:
    def test_upper_bound_tightened(self):
        m = Model()
        x = m.add_integer("x", 0, 10)
        m.add(2 * x <= 7)
        m.minimize(-x)
        reduced, report = presolve(m)
        assert report.singleton_rows == 1
        assert reduced.var("x").ub == 3  # floor(7/2)

    def test_negative_coefficient_flips_sense(self):
        m = Model()
        x = m.add_integer("x", 0, 10)
        m.add(-x <= -4)  # x >= 4
        m.minimize(x)
        reduced, _ = presolve(m)
        assert reduced.var("x").lb == 4

    def test_equality_singleton_fixes(self):
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add(x == 6)
        m.add(x + y <= 9)
        m.minimize(y - x)
        reduced, report = presolve(m)
        assert "x" in report.fixed_values
        assert report.fixed_values["x"] == 6
        assert not reduced.has_var("x")
        # x folded into the row: y <= 3.
        res = HighsBackend().solve(reduced)
        assert res.values["y"] <= 3 + 1e-9

    def test_empty_domain_detected(self):
        m = Model()
        x = m.add_binary("x")
        m.add(x >= 0.4)
        m.add(x <= 0.6)
        m.minimize(x)
        with pytest.raises(InfeasibleModelError):
            presolve(m)


class TestRowCleanup:
    def test_tautological_row_dropped(self):
        m = Model()
        x = m.add_binary("x")
        m.add(lin_sum([]) <= 5)  # 0 <= 5
        m.add(x <= 1)
        m.minimize(x)
        _, report = presolve(m)
        assert report.rows_dropped >= 1

    def test_violated_constant_row_detected(self):
        m = Model()
        m.add_binary("x")
        m.add(lin_sum([1]) <= 0)  # 1 <= 0
        m.minimize(lin_sum([]))
        with pytest.raises(InfeasibleModelError):
            presolve(m)

    def test_duplicate_rows_keep_tightest(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add(x + y <= 2)
        m.add(x + y <= 1)
        m.minimize(-x - y)
        reduced, report = presolve(m)
        assert report.duplicate_rows == 1
        res = HighsBackend().solve(reduced)
        assert res.objective == pytest.approx(-1.0)

    def test_conflicting_duplicate_equalities(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add(x + y == 1)
        m.add(x + y == 2)
        m.minimize(x)
        with pytest.raises(InfeasibleModelError):
            presolve(m)


class TestDuplicateRowHashing:
    """Targeted coverage for single-pass duplicate detection: each row is
    sign-normalized and hashed exactly once (the old scan re-normalized
    rows per comparison pair — quadratic on fig-scale models)."""

    def test_many_parallel_rows_collapse_to_tightest(self):
        m = Model()
        x = m.add_integer("x", 0, 50)
        y = m.add_integer("y", 0, 50)
        for bound in range(40, 10, -1):  # 30 parallel rows, tightest last
            m.add(x + y <= bound)
        m.add(x + y <= 11)
        m.minimize(-x - y)
        reduced, report = presolve(m)
        assert report.duplicate_rows == 30
        assert reduced.num_constraints == 1
        res = HighsBackend().solve(reduced)
        assert res.objective == pytest.approx(-11.0)

    def test_scaled_duplicate_merges(self):
        # 2x + 2y <= 6 normalizes to x + y <= 3: a duplicate of the first.
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add(x + y <= 5)
        m.add(2 * x + 2 * y <= 6)
        m.minimize(-x - y)
        reduced, report = presolve(m)
        assert report.duplicate_rows == 1
        res = HighsBackend().solve(reduced)
        assert res.objective == pytest.approx(-3.0)

    def test_sign_flipped_rows_are_not_false_duplicates(self):
        # -x - y <= -2 is x + y >= 2: the OPPOSITE sense of x + y <= 4
        # after sign normalization.  It must never be merged into it.
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add(x + y <= 4)
        m.add(-x - y <= -2)
        m.minimize(x + 2 * y)
        reduced, _ = presolve(m)
        res = HighsBackend().solve(reduced)
        # Both sides must survive: minimum is x=2, y=0 (not 0, 0).
        assert res.objective == pytest.approx(2.0)

    def test_sign_flipped_equivalent_rows_do_merge(self):
        # -x - y >= -3 IS x + y <= 3; the tightest of the pair wins.
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add(x + y <= 5)
        m.add(-(x + y) >= -3)
        m.minimize(-x - y)
        reduced, report = presolve(m)
        assert report.duplicate_rows == 1
        assert reduced.num_constraints == 1
        res = HighsBackend().solve(reduced)
        assert res.objective == pytest.approx(-3.0)

    def test_later_tighter_duplicate_updates_kept_row(self):
        # The kept (first) row's rhs must be overwritten by a tighter
        # later duplicate even when their scales differ.
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add(3 * x + 3 * y <= 27)  # x + y <= 9
        m.add(x + y <= 4)
        m.maximize(x + y)
        reduced, report = presolve(m)
        assert report.duplicate_rows == 1
        res = HighsBackend().solve(reduced)
        assert res.objective == pytest.approx(4.0)


class TestEquivalence:
    def knapsackish(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(5)]
        m.add(lin_sum(w * x for w, x in zip([3, 4, 5, 8, 2], xs)) <= 11)
        m.add(xs[0] == 1)  # forces substitution
        m.add(xs[1] <= 0)  # forces fixing to 0
        m.maximize(lin_sum(v * x for v, x in zip([4, 5, 6, 10, 1], xs)))
        return m

    def test_same_optimum_after_presolve(self):
        original = self.knapsackish()
        reduced, report = presolve(original)
        res_orig = HighsBackend().solve(self.knapsackish())
        res_red = HighsBackend().solve(reduced)
        assert res_red.objective == pytest.approx(res_orig.objective)
        assert report.vars_fixed >= 2

    def test_extend_solution_restores_fixed(self):
        reduced, report = presolve(self.knapsackish())
        res = HighsBackend().solve(reduced)
        full = extend_solution(report, res.values)
        assert full["x0"] == 1.0
        assert full["x1"] == 0.0
        # Extended assignment is feasible in the original model.
        assert self.knapsackish().check_feasible(full) == []

    def test_presolve_shrinks_model(self):
        reduced, _ = presolve(self.knapsackish())
        assert reduced.num_vars < 5
        assert reduced.num_constraints <= 1
