"""Design-space exploration bench: adaptive vs exhaustive sweep.

Runs the stock 24-scenario space (2 Table-I twins x 2 profile families x
3 crossbar pools x 2 formulations) through both search drivers and
checks the bargain the adaptive driver promises:

- **budget** — the successive-halving driver executes **<= 50%** of the
  ILP stage-solves the exhaustive grid pays (hard acceptance floor; the
  driver also guarantees it by construction);
- **quality** — its frontier retains **>= 95%** of the exhaustive
  frontier's hypervolume under one shared reference point;
- **resume** — re-running the exhaustive sweep against its own JSONL run
  store costs zero solves and returns every scenario from the store.

Emits ``BENCH_dse.json`` at the **repo root** so the exploration
trajectory is tracked across PRs alongside the other ``BENCH_*.json``
files.

Run:  pytest benchmarks/bench_dse.py --benchmark-only
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from bench_config import once
from repro.dse import (
    Explorer,
    RunStore,
    default_space,
    explore_adaptive,
    explore_grid,
    hypervolume,
    reference_point,
)

#: Repo root (benchmarks/ is one level below it).
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dse.json"

#: Acceptance floors.
MAX_SOLVE_FRACTION = 0.5
MIN_HV_RETENTION = 0.95

#: Per-stage solver budget: the sweep's shape (who dominates whom) is
#: stable at small scale; generous budgets only add wall-clock.
TIME_LIMIT = 5.0
JOBS = 2
NUM_SAMPLES = 2


def _run_sweeps() -> dict:
    space = default_space(num_samples=NUM_SAMPLES)
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "runs.jsonl"
        grid = explore_grid(
            space,
            Explorer(store=RunStore(store_path), jobs=JOBS, time_limit=TIME_LIMIT),
        )
        resumed = explore_grid(
            space,
            Explorer(store=RunStore(store_path), jobs=JOBS, time_limit=TIME_LIMIT),
        )
    adaptive = explore_adaptive(
        space, Explorer(jobs=JOBS, time_limit=TIME_LIMIT)
    )

    grid_points = grid.objective_points()
    adaptive_points = adaptive.objective_points()
    ref = reference_point(np.vstack([grid_points, adaptive_points]))
    hv_grid = hypervolume(grid_points, ref)
    hv_adaptive = hypervolume(adaptive_points, ref)

    return {
        "scenarios": len(space),
        "grid": {
            "ilp_solves": grid.ilp_solves,
            "evaluated": len(grid.ok_results()),
            "frontier_size": len(grid.frontier()),
            "hypervolume": hv_grid,
            "wall_seconds": grid.wall_time,
        },
        "adaptive": {
            "ilp_solves": adaptive.ilp_solves,
            "evaluated": len(adaptive.ok_results()),
            "pruned": len(adaptive.pruned),
            "rungs": adaptive.meta["rungs"],
            "frontier_size": len(adaptive.frontier()),
            "hypervolume": hv_adaptive,
            "wall_seconds": adaptive.wall_time,
        },
        "resume": {
            "ilp_solves": resumed.ilp_solves,
            "from_store": resumed.resumed,
        },
        "solve_fraction": adaptive.ilp_solves / grid.ilp_solves,
        "hv_retention": hv_adaptive / hv_grid,
        "reference_point": [float(c) for c in ref],
        "grid_frontier": [
            r.scenario.name for r in grid.frontier()
        ],
        "adaptive_frontier": [
            r.scenario.name for r in adaptive.frontier()
        ],
    }


def test_benchmark_dse(benchmark):
    stats = once(benchmark, _run_sweeps)

    payload = {
        "schema": "repro.bench_dse/1",
        "source": "benchmarks/bench_dse.py",
        "max_solve_fraction": MAX_SOLVE_FRACTION,
        "min_hv_retention": MIN_HV_RETENTION,
        **stats,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    assert stats["grid"]["evaluated"] == stats["scenarios"], (
        f"grid evaluated {stats['grid']['evaluated']} of "
        f"{stats['scenarios']} scenarios"
    )
    assert stats["resume"]["ilp_solves"] == 0, (
        f"store resume re-solved {stats['resume']['ilp_solves']} stage(s)"
    )
    assert stats["resume"]["from_store"] == stats["scenarios"]
    assert stats["solve_fraction"] <= MAX_SOLVE_FRACTION, (
        f"adaptive spent {stats['solve_fraction']:.0%} of the grid's ILP "
        f"solves (> {MAX_SOLVE_FRACTION:.0%} ceiling)"
    )
    assert stats["hv_retention"] >= MIN_HV_RETENTION, (
        f"adaptive frontier retains only {stats['hv_retention']:.1%} of "
        f"exhaustive hypervolume (< {MIN_HV_RETENTION:.0%} floor)"
    )
