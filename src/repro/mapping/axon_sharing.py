"""The paper's core ILP formulation (Section IV-A/B).

Variables (all binary):

- ``x[i, j]`` — neuron ``i``'s output line is on crossbar ``j``;
- ``s[k, j]`` — crossbar ``j`` receives neuron ``k`` as an axonal input
  (created only for *source* neurons, those with fan-out > 0);
- ``y[j]`` — crossbar ``j`` is enabled.

Constraints (paper numbering):

- (3) every neuron is placed exactly once;
- (4) outputs per crossbar within ``N_j``, gated by ``y[j]``;
- (5) ``s[k, j] <= sum_{i in succ(k)} x[i, j]`` — an axon is only routed
  where some consumer lives;
- (6) ``s[k, j] >= x[i, j]`` for every synapse ``k -> i`` — placing a
  consumer forces the axon (this is the axon-*sharing* modelling: one
  ``s`` no matter how many consumers share the word-line);
- (7) distinct axon inputs per crossbar within ``A_j``, gated by ``y[j]``.

Objective (8): ``min sum_j y[j] * C_j``.

Every constraint family is emitted as one columnar block
(:meth:`~repro.ilp.model.Model.add_block`) over index arrays — variables
live in a fixed layout (``y`` block, then ``x`` row-major over
(neuron, slot), then ``s`` over (source, slot)) so rows/cols are pure
index arithmetic and build cost is O(nnz) NumPy work, not one ``LinExpr``
per synapse/slot pair.  The layout and the families shared with the
route formulation live in :class:`_SlotFormulation`, which
:class:`~repro.mapping.snu.RouteModel` reuses — there is exactly one copy
of the index arithmetic.  Warm starts and solution extraction ride the
same layout end to end as dense vectors.

Options cover the ablations DESIGN.md calls out: symmetry breaking between
identical slots, aggregated vs. per-edge form of constraint 6, inclusion
of the (never-binding under these objectives) upper link (5), and
warm-start construction from any valid mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..ilp.expr import LinExpr, Variable
from ..ilp.model import Model, Sense
from ..ilp.result import SolveResult
from .problem import MappingProblem
from .solution import Mapping


@dataclass(frozen=True)
class FormulationOptions:
    """Tunable aspects of the area formulation (defaults = paper-faithful).

    ``symmetry`` selects the slot-permutation symmetry-breaking level (see
    :mod:`repro.mapping.symmetry`): ``"order"`` (default) emits the
    historical ``y[a] >= y[b]`` prefix rows on the area model only;
    ``"lex"`` adds per-neuron column-precedence rows *and* extends
    symmetry breaking to the route stages of a pipeline; ``"off"``
    disables it everywhere.  The legacy booleans remain the master
    switches for ablations — when either is ``False`` the effective level
    degrades to ``"off"``.
    """

    symmetry_breaking: bool = True
    disaggregate_sharing: bool = True  # per-edge constraint 6 (tighter LP)
    include_upper_link: bool = True  # constraint 5
    order_enabled_slots: bool = True  # y_j >= y_{j+1} within identical groups
    symmetry: str = "order"  # "off" | "order" | "lex"

    def __post_init__(self) -> None:
        from .symmetry import check_level

        check_level(self.symmetry)

    def effective_symmetry(self) -> str:
        """The symmetry level after the legacy ablation switches apply."""
        if not (self.symmetry_breaking and self.order_enabled_slots):
            return "off"
        return self.symmetry

    def route_symmetry(self) -> str:
        """The level route stages inherit from these options.

        ``"order"`` historically applied to the area model only, so route
        stages stay symmetric under the default; only an explicit
        ``"lex"`` (or ``"off"``) propagates.
        """
        level = self.effective_symmetry()
        return level if level == "lex" else "off"

    def fingerprint(self) -> str:
        """Process-stable content fingerprint of these options."""
        from .fingerprint import options_fingerprint

        return options_fingerprint(self)


def x_name(i: int, j: int) -> str:
    return f"x_{i}_{j}"


def s_name(k: int, j: int) -> str:
    return f"s_{k}_{j}"


def y_name(j: int) -> str:
    return f"y_{j}"


def b_name(k: int, j: int) -> str:
    return f"b_{k}_{j}"


class _SlotFormulation:
    """Fixed y/x/s layout over (neurons x model slots) plus the constraint
    families shared by the area and route formulations.

    One instance owns the index arithmetic for a model whose slot universe
    is ``slots`` (every architecture slot for the area model, the frozen
    allowed set for the route model): variable bases, source positions,
    per-(edge, slot) entry coordinates, columnar emission of families
    (3)/(4)/(7)/(6)/(5), dense warm-start filling and dense extraction.
    """

    def __init__(self, problem: MappingProblem, slots: Iterable[int]) -> None:
        self.problem = problem
        self.slot_list = list(slots)
        neurons = problem.network.neuron_ids()  # compact: 0..n-1
        sources = problem.sources()
        n, m, p = len(neurons), len(self.slot_list), len(sources)
        self.neurons = neurons
        self.num_neurons = n
        self.num_model_slots = m
        self.num_sources = p
        self.slot_ids = np.asarray(self.slot_list, dtype=np.int64)
        self.slot_pos_of = {j: pos for pos, j in enumerate(self.slot_list)}
        self.sources = np.asarray(sources, dtype=np.int64)
        self.x_base = m
        self.s_base = m + n * m
        kpos_of = np.full(n, -1, dtype=np.int64)
        kpos_of[self.sources] = np.arange(p)
        self.kpos_of = kpos_of

        arch = problem.architecture
        self.outputs = np.array(
            [arch.slot(j).outputs for j in self.slot_list], dtype=np.float64
        )
        self.inputs = np.array(
            [arch.slot(j).inputs for j in self.slot_list], dtype=np.float64
        )
        self.areas = np.array(
            [arch.slot(j).area for j in self.slot_list], dtype=np.float64
        )

        edges = problem.edges()
        self.edge_src = np.array([k for k, _ in edges], dtype=np.int64)
        self.edge_dst = np.array([i for _, i in edges], dtype=np.int64)
        self.num_edges = self.edge_src.size
        if self.num_edges:
            # Edge e replicated across every slot position j — the entry
            # coordinates of the per-edge sharing and uplink families.
            j_tile = np.tile(np.arange(m, dtype=np.int64), self.num_edges)
            edge_kpos_rep = np.repeat(kpos_of[self.edge_src], m)
            self.edge_s_cols = self.s_base + edge_kpos_rep * m + j_tile
            self.edge_x_cols = self.x_base + np.repeat(self.edge_dst, m) * m + j_tile
            self.edge_src_rows = edge_kpos_rep * m + j_tile

    # ------------------------------------------------------------------
    # variable registration and index arithmetic
    # ------------------------------------------------------------------
    def register_variables(self, model: Model):
        """Create the y/x/s blocks in layout order; returns handle dicts."""
        slots = self.slot_list
        ys = model.add_binaries(y_name(j) for j in slots)
        xs = model.add_binaries(x_name(i, j) for i in self.neurons for j in slots)
        ss = model.add_binaries(
            s_name(k, j) for k in self.sources.tolist() for j in slots
        )
        y = dict(zip(slots, ys))
        x = dict(zip(((i, j) for i in self.neurons for j in slots), xs))
        s = dict(zip(((k, j) for k in self.sources.tolist() for j in slots), ss))
        return y, x, s

    def x_index(self, i: int, jpos: int) -> int:
        return self.x_base + i * self.num_model_slots + jpos

    def s_index(self, kpos: int, jpos: int) -> int:
        return self.s_base + kpos * self.num_model_slots + jpos

    # ------------------------------------------------------------------
    # shared constraint families (columnar blocks)
    # ------------------------------------------------------------------
    def emit_place(self, model: Model) -> None:
        """(3) each neuron's output maps to exactly one crossbar."""
        n, m = self.num_neurons, self.num_model_slots
        model.add_block(
            rows=np.repeat(np.arange(n, dtype=np.int64), m),
            cols=self.x_base + np.arange(n * m, dtype=np.int64),
            coefs=np.ones(n * m),
            sense=Sense.EQ,
            rhs=1.0,
            num_rows=n,
            name=[f"place_{i}" for i in self.neurons],
        )

    def emit_outputs(self, model: Model) -> None:
        """(4) output-line capacity: sum_i x[i, j] - N_j * y[j] <= 0."""
        n, m = self.num_neurons, self.num_model_slots
        all_j = np.arange(m, dtype=np.int64)
        model.add_block(
            rows=np.concatenate([np.tile(all_j, n), all_j]),
            cols=np.concatenate(
                [self.x_base + np.arange(n * m, dtype=np.int64), all_j]
            ),
            coefs=np.concatenate([np.ones(n * m), -self.outputs]),
            sense=Sense.LE,
            rhs=0.0,
            num_rows=m,
            name=[f"outputs_{j}" for j in self.slot_list],
        )

    def emit_inputs(self, model: Model) -> None:
        """(7) input-line capacity: sum_k s[k, j] - A_j * y[j] <= 0."""
        p, m = self.num_sources, self.num_model_slots
        all_j = np.arange(m, dtype=np.int64)
        model.add_block(
            rows=np.concatenate([np.tile(all_j, p), all_j]),
            cols=np.concatenate(
                [self.s_base + np.arange(p * m, dtype=np.int64), all_j]
            ),
            coefs=np.concatenate([np.ones(p * m), -self.inputs]),
            sense=Sense.LE,
            rhs=0.0,
            num_rows=m,
            name=[f"inputs_{j}" for j in self.slot_list],
        )

    def emit_share(self, model: Model) -> None:
        """(6) per-edge sharing: s[k, j] - x[i, j] >= 0 per (edge, slot)."""
        if not self.num_edges:
            return
        count = self.num_edges * self.num_model_slots
        rows = np.arange(count, dtype=np.int64)
        model.add_block(
            rows=np.concatenate([rows, rows]),
            cols=np.concatenate([self.edge_s_cols, self.edge_x_cols]),
            coefs=np.concatenate([np.ones(count), -np.ones(count)]),
            sense=Sense.GE,
            rhs=0.0,
            num_rows=count,
            name="share",
        )

    def emit_uplink(self, model: Model) -> None:
        """(5) upper link: s[k, j] - sum_{i in succ(k)} x[i, j] <= 0."""
        if not self.num_edges:
            return
        p, m = self.num_sources, self.num_model_slots
        s_rows = np.arange(p * m, dtype=np.int64)
        model.add_block(
            rows=np.concatenate([s_rows, self.edge_src_rows]),
            cols=np.concatenate(
                [self.s_base + np.arange(p * m, dtype=np.int64), self.edge_x_cols]
            ),
            coefs=np.concatenate(
                [np.ones(p * m), -np.ones(self.num_edges * m)]
            ),
            sense=Sense.LE,
            rhs=0.0,
            num_rows=p * m,
            name="uplink",
        )

    # ------------------------------------------------------------------
    # dense warm starts and extraction
    # ------------------------------------------------------------------
    def warm_vector(self, model: Model, mapping: Mapping) -> np.ndarray:
        """Dense x/y/s assignment consistent with ``mapping`` (no b vars)."""
        x0 = np.zeros(model.num_vars)
        pos = self.slot_pos_of
        for i, j in mapping.assignment.items():
            x0[self.x_index(i, pos[j])] = 1.0
        for j in mapping.enabled_slots():
            jpos = pos[j]
            x0[jpos] = 1.0  # y_j
            for k in mapping.axon_inputs(j):
                x0[self.s_index(int(self.kpos_of[k]), jpos)] = 1.0
        return x0

    def placement_from_x(self, x: np.ndarray) -> tuple[dict[int, int], np.ndarray]:
        """Placed-slot assignment and per-neuron placement counts from a
        dense solution vector."""
        n, m = self.num_neurons, self.num_model_slots
        placed = (
            np.asarray(x)[self.x_base : self.x_base + n * m].reshape(n, m) > 0.5
        )
        counts = np.count_nonzero(placed, axis=1)
        jpos = np.argmax(placed, axis=1)
        assignment = {
            int(i): int(self.slot_ids[jpos[i]])
            for i in np.flatnonzero(counts >= 1)
        }
        return assignment, counts


class AreaModel:
    """The lowered area-optimization ILP plus its variable handles."""

    def __init__(
        self,
        problem: MappingProblem,
        options: FormulationOptions | None = None,
    ) -> None:
        self.problem = problem
        self.options = options or FormulationOptions()
        self.model = Model("area")
        self.x: dict[tuple[int, int], Variable] = {}
        self.s: dict[tuple[int, int], Variable] = {}
        self.y: dict[int, Variable] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        prob = self.problem
        model = self.model
        opts = self.options
        layout = _SlotFormulation(prob, range(prob.num_slots))
        self._layout = layout
        self.y, self.x, self.s = layout.register_variables(model)
        m = layout.num_model_slots

        layout.emit_place(model)
        layout.emit_outputs(model)

        # (6) axon sharing: per-edge (tighter LP) or aggregated per source.
        if opts.disaggregate_sharing:
            layout.emit_share(model)
        elif layout.num_edges:
            # |succ(k)| * s[k, j] - sum_{i in succ(k)} x[i, j] >= 0.
            p = layout.num_sources
            fanout = np.bincount(
                layout.kpos_of[layout.edge_src], minlength=p
            ).astype(np.float64)
            s_rows = np.arange(p * m, dtype=np.int64)
            model.add_block(
                rows=np.concatenate([s_rows, layout.edge_src_rows]),
                cols=np.concatenate(
                    [
                        layout.s_base + np.arange(p * m, dtype=np.int64),
                        layout.edge_x_cols,
                    ]
                ),
                coefs=np.concatenate(
                    [np.repeat(fanout, m), -np.ones(layout.num_edges * m)]
                ),
                sense=Sense.GE,
                rhs=0.0,
                num_rows=p * m,
                name="share_agg",
            )

        if opts.include_upper_link:
            layout.emit_uplink(model)
        layout.emit_inputs(model)

        # Symmetry breaking: identical slots are interchangeable; force
        # enabled ones to be the lowest-indexed of each group ("order"), or
        # the full lexicographic canonical form ("lex").  Cheap rows that
        # cut the search space by the product of group factorials.
        from .symmetry import emit_symmetry, slot_orbits

        level = opts.effective_symmetry()
        if level != "off":
            emit_symmetry(
                model,
                slot_orbits(prob.architecture, layout.slot_list),
                layout.num_neurons,
                layout.x_base,
                m,
                level,
            )

        # (8) minimize enabled area (y variables occupy columns 0..m-1).
        model.minimize(LinExpr(dict(zip(range(m), layout.areas.tolist()))))

        # Duck-typed hook for the LP-rounding backend: how to turn an LP
        # point plus a seed into a feasible incumbent for *this* model.
        from .rounding import MappingRoundingGuide

        model.rounding_guide = MappingRoundingGuide(
            handle=self, objective="area", symmetry=level
        )

    # ------------------------------------------------------------------
    def warm_start_from(self, mapping: Mapping) -> np.ndarray:
        """Dense variable assignment (x, s, y consistent) for a valid mapping.

        With symmetry breaking enabled the mapping is first canonicalized
        to the model's symmetry level: enabled slots are compacted to the
        lowest indices of their identical groups (and, under ``"lex"``,
        ordered by minimum member neuron), preserving validity and
        objective value.
        """
        from .symmetry import canonicalize

        canonical = canonicalize(mapping, self.options.effective_symmetry())
        return self._layout.warm_vector(self.model, canonical)

    def extract_mapping(self, result: SolveResult) -> Mapping:
        """Recover the neuron placement from a solve result."""
        if not result.status.has_solution():
            raise ValueError(f"no solution to extract (status {result.status})")
        if result.x is not None:
            return self.mapping_from_x(result.x)
        if result.values is None:
            raise ValueError(f"no solution to extract (status {result.status})")
        return self.mapping_from_values(result.values)

    def mapping_from_x(self, x: np.ndarray) -> Mapping:
        """Recover a placement from a dense index-ordered assignment."""
        assignment, counts = self._layout.placement_from_x(x)
        if np.any(counts > 1):
            dup = int(np.argmax(counts > 1))
            raise ValueError(f"neuron {dup} placed twice in ILP solution")
        return self._validated(assignment)

    def mapping_from_values(self, values: dict[str, float]) -> Mapping:
        """Recover a placement from a raw name-keyed assignment (e.g. one
        incumbent of a solve trace)."""
        assignment: dict[int, int] = {}
        for (i, j), var in self.x.items():
            if values.get(var.name, 0.0) > 0.5:
                if i in assignment:
                    raise ValueError(f"neuron {i} placed twice in ILP solution")
                assignment[i] = j
        return self._validated(assignment)

    def _validated(self, assignment: dict[int, int]) -> Mapping:
        mapping = Mapping(self.problem, assignment)
        issues = mapping.validate()
        if issues:
            raise AssertionError(f"ILP produced an invalid mapping: {issues[:3]}")
        return mapping


def canonicalize_mapping(mapping: Mapping) -> Mapping:
    """Relocate enabled slots to the lowest indices within identical groups.

    Produces an equivalent mapping (same area, routes and packets) that
    satisfies the ``y_a >= y_b`` symmetry-breaking order.  This is the
    ``"order"`` level of :func:`repro.mapping.symmetry.canonicalize`, kept
    as a named entry point for callers that predate the leveled API.
    """
    from .symmetry import canonicalize

    return canonicalize(mapping, "order")


def build_area_model(
    problem: MappingProblem, options: FormulationOptions | None = None
) -> AreaModel:
    """Convenience constructor mirroring the other formulation builders."""
    return AreaModel(problem, options)
