"""Memristor-crossbar-architecture substrate: crossbar types and pools
(homogeneous + Table II heterogeneous), a mesh NoC, the mapped-processor
traffic model, and first-order area/energy accounting."""

from .architecture import (
    BASE_DIMENSIONS,
    MACRO_FACTORS,
    MAX_INPUT_CHANNELS,
    Architecture,
    custom_architecture,
    heterogeneous_architecture,
    homogeneous_architecture,
    table_ii_types,
)
from .crossbar import CrossbarSlot, CrossbarType
from .energy import CostSummary, EnergyModel, cost_summary, enabled_area
from .nonideal import (
    FidelityReport,
    NonidealityModel,
    apply_nonidealities,
    fidelity,
    quantize_weight,
)
from .noc import LinkLoad, MeshNoC, MeshPosition, hop_weighted_packets
from .processor import (
    MappedProcessor,
    TrafficReport,
    count_packets,
    target_crossbars,
)

__all__ = [
    "Architecture",
    "BASE_DIMENSIONS",
    "CostSummary",
    "CrossbarSlot",
    "CrossbarType",
    "EnergyModel",
    "FidelityReport",
    "NonidealityModel",
    "apply_nonidealities",
    "fidelity",
    "quantize_weight",
    "LinkLoad",
    "MACRO_FACTORS",
    "MAX_INPUT_CHANNELS",
    "MappedProcessor",
    "MeshNoC",
    "MeshPosition",
    "TrafficReport",
    "cost_summary",
    "count_packets",
    "custom_architecture",
    "enabled_area",
    "heterogeneous_architecture",
    "homogeneous_architecture",
    "hop_weighted_packets",
    "table_ii_types",
    "target_crossbars",
]
