"""Tests for spike-train encoders and network serialization."""

import numpy as np
import pytest

from repro.snn.encoding import decode_rate, encode_frame, rate_encode, ttfs_encode
from repro.snn.generators import random_network
from repro.snn.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


class TestRateEncode:
    def test_zero_never_spikes(self):
        assert rate_encode(0.0, 10) == []

    def test_one_spikes_every_step(self):
        assert rate_encode(1.0, 5) == [0, 1, 2, 3, 4]

    def test_half_rate(self):
        spikes = rate_encode(0.5, 10)
        assert len(spikes) == 5
        assert all(0 <= t < 10 for t in spikes)

    def test_spikes_sorted_unique(self):
        spikes = rate_encode(0.73, 30)
        assert spikes == sorted(set(spikes))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            rate_encode(1.2, 10)
        with pytest.raises(ValueError):
            rate_encode(0.5, 0)

    def test_deterministic(self):
        assert rate_encode(0.37, 24) == rate_encode(0.37, 24)


class TestTtfsEncode:
    def test_zero_never_spikes(self):
        assert ttfs_encode(0.0, 10) == []

    def test_one_spikes_first(self):
        assert ttfs_encode(1.0, 10) == [0]

    def test_small_value_spikes_late(self):
        (t,) = ttfs_encode(0.05, 10)
        assert t >= 8

    def test_monotone_in_value(self):
        times = [ttfs_encode(v, 20)[0] for v in (0.2, 0.5, 0.9)]
        assert times == sorted(times, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ttfs_encode(-0.1, 10)
        with pytest.raises(ValueError):
            ttfs_encode(0.5, 0)


class TestEncodeFrame:
    def test_maps_pixels_to_inputs(self):
        frame = np.array([[1.0, 0.0], [0.5, 0.0]])
        spikes = encode_frame(frame, input_ids=[10, 11, 12, 13], window=8)
        assert 10 in spikes  # brightest pixel drives first input
        assert 11 not in spikes  # dark pixel silent
        assert 12 in spikes

    def test_normalization_by_peak(self):
        frame = np.array([[4.0, 2.0]])
        spikes = encode_frame(frame, input_ids=[0, 1], window=10)
        assert len(spikes[0]) == 10  # peak pixel at full rate
        assert len(spikes[1]) == 5

    def test_zero_frame_silent(self):
        assert encode_frame(np.zeros((2, 2)), [0, 1, 2, 3], 5) == {}

    def test_too_many_pixels_rejected(self):
        with pytest.raises(ValueError, match="pixels"):
            encode_frame(np.ones((3, 3)), [0, 1], 5)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            encode_frame(np.ones((1, 1)), [0], 5, method="morse")

    def test_ttfs_method(self):
        spikes = encode_frame(np.array([[1.0]]), [7], 10, method="ttfs")
        assert spikes == {7: [0]}


class TestDecodeRate:
    def test_picks_most_active(self):
        assert decode_rate({5: 2, 6: 9}, output_ids=[5, 6]) == 1

    def test_tie_breaks_to_lowest_id(self):
        assert decode_rate({5: 3, 6: 3}, output_ids=[5, 6]) == 0

    def test_empty_outputs_rejected(self):
        with pytest.raises(ValueError):
            decode_rate({}, output_ids=[])


class TestNetworkIO:
    def test_dict_round_trip(self):
        net = random_network(10, 20, seed=4)
        data = network_to_dict(net)
        back = network_from_dict(data)
        assert list(back.neurons()) == list(net.neurons())
        assert list(back.synapses()) == list(net.synapses())

    def test_file_round_trip(self, tmp_path):
        net = random_network(8, 14, seed=6, name="disk")
        path = tmp_path / "net.json"
        save_network(net, path)
        back = load_network(path)
        assert back.name == "disk"
        assert back.num_synapses == 14

    def test_version_check(self):
        net = random_network(4, 4, seed=1)
        data = network_to_dict(net)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            network_from_dict(data)

    def test_defaults_applied(self):
        data = {
            "name": "minimal",
            "nodes": [{"id": 0}, {"id": 1}],
            "edges": [{"from": 0, "to": 1}],
        }
        net = network_from_dict(data)
        assert net.neuron(0).threshold == 1.0
        assert net.synapse(0, 1).delay == 1
