"""Batch-engine bench: serial loop vs process-pooled batch mapping.

Maps 8 independent networks through the area stage serially and through a
4-worker pool.  Per-problem results must be identical in both modes (the
pool only changes *where* a job runs, never *what* it computes); on a
multi-core machine (>= 4 cores) the pooled sweep must finish at least 2x
faster in wall-clock terms.  On fewer cores the speedup assertion is
skipped — the identity assertions still run.

Run:  pytest benchmarks/bench_batch.py --benchmark-only
"""

import os
import time

import pytest

from bench_config import once
from repro.batch.cache import ResultCache
from repro.batch.engine import BatchJob, BatchMapper
from repro.mca.architecture import homogeneous_architecture
from repro.snn.generators import random_network

#: Enough independent instances that pool overhead amortizes.
NUM_NETWORKS = 8
WORKERS = 4

#: Budgets are generous on purpose: every instance below solves to proven
#: optimality in ~1-3s, so results are budget-independent (deterministic)
#: and serial-vs-pooled identity is exact.  Wall-clock-limited solves
#: would make incumbents timing-dependent and the comparison meaningless.
AREA_BUDGET = 30.0
ROUTE_BUDGET = 15.0


def _jobs() -> list[BatchJob]:
    jobs = []
    for i in range(NUM_NETWORKS):
        net = random_network(18, 36, seed=700 + i, max_fan_in=6, name=f"b{i}")
        arch = homogeneous_architecture(net.num_neurons, dimension=8)
        jobs.append(
            BatchJob(
                name=f"b{i}",
                network=net,
                architecture=arch,
                stages=("area", "snu"),
                area_time_limit=AREA_BUDGET,
                route_time_limit=ROUTE_BUDGET,
            )
        )
    return jobs


def _metrics(result):
    return {
        record.name: {
            stage_name: stage.metrics for stage_name, stage in record.stages.items()
        }
        for record in result
    }


def test_benchmark_batch_pool_speedup(benchmark):
    jobs = _jobs()

    serial_start = time.perf_counter()
    serial = BatchMapper(jobs=1).map_all(jobs)
    serial_wall = time.perf_counter() - serial_start
    assert all(record.ok for record in serial)

    pooled_start = time.perf_counter()
    pooled = once(benchmark, lambda: BatchMapper(jobs=WORKERS).map_all(jobs))
    pooled_wall = time.perf_counter() - pooled_start
    assert all(record.ok for record in pooled)

    # Identity: the pool must not change any per-problem outcome.
    assert _metrics(pooled) == _metrics(serial)
    for ser, par in zip(serial, pooled):
        assert par.final().mapping.assignment == ser.final().mapping.assignment

    speedup = serial_wall / max(pooled_wall, 1e-9)
    cores = os.cpu_count() or 1
    print(f"\nserial {serial_wall:.1f}s, pooled({WORKERS}) {pooled_wall:.1f}s, "
          f"speedup {speedup:.2f}x on {cores} core(s)")
    if cores >= 4:
        assert speedup >= 2.0, (
            f"pooled sweep only {speedup:.2f}x faster on {cores} cores"
        )


def test_benchmark_jobs1_matches_plain_serial_loop(benchmark):
    """--jobs 1 is bit-for-bit the serial loop (metrics and placements)."""
    from repro.mapping.pipeline import MappingPipeline

    jobs = _jobs()[:4]
    plain = {}
    for job in jobs:
        pipeline = MappingPipeline(
            job.build_problem(),
            area_time_limit=job.area_time_limit,
            route_time_limit=job.route_time_limit,
        )
        plain[job.name] = pipeline.run(stages=job.stages)

    result = once(benchmark, lambda: BatchMapper(jobs=1).map_all(jobs))
    for record in result:
        reference = plain[record.name]
        for stage_name, stage in record.stages.items():
            ref = reference.stages[stage_name]
            assert stage.mapping.assignment == ref.mapping.assignment
            assert stage.metrics == ref.metrics
            assert stage.det_time == ref.det_time


def test_benchmark_cached_resweep(benchmark):
    """A cached second sweep is pure lookups — orders of magnitude faster."""
    jobs = _jobs()[:4]
    cache = ResultCache()
    mapper = BatchMapper(jobs=1, cache=cache)

    first_start = time.perf_counter()
    first = mapper.map_all(jobs)
    first_wall = time.perf_counter() - first_start

    second = once(benchmark, lambda: mapper.map_all(jobs))
    second_wall = max(
        benchmark.stats.stats.total if benchmark.stats else 0.0, 1e-9
    )
    assert all(record.from_cache for record in second)
    assert _metrics(second) == _metrics(first)
    assert second_wall < first_wall / 5
    assert cache.stats.hit_rate() == pytest.approx(0.5)
