"""Row-structure and derived-property tests for the figure modules.

These run no solver: they exercise the pure computation on the dataclass
records (improvement percentages, break-even ratios, histograms).
"""

import pytest

from repro.experiments.fig2 import Fig2Row
from repro.experiments.fig5 import SnuRow
from repro.experiments.fig9 import Fig9Row, _pixel_grid_for


class TestFig2Row:
    ROW = Fig2Row(
        network="A",
        mcc_homo_area=1536.0,
        axon_homo_area=1024.0,
        mcc_het_area=464.0,
        axon_het_area=448.0,
        mcc_homo_det=100.0,
        axon_homo_det=250.0,
        mcc_het_det=80.0,
        axon_het_det=120.0,
    )

    def test_homo_improvement(self):
        assert self.ROW.axon_homo_improvement == pytest.approx(33.33, abs=0.01)

    def test_het_improvement_relative_to_mcc_homo(self):
        assert self.ROW.axon_het_improvement == pytest.approx(70.83, abs=0.01)

    def test_het_further_relative_to_axon_homo(self):
        assert self.ROW.het_further_improvement == pytest.approx(56.25, abs=0.01)

    def test_breakeven_ratios(self):
        assert self.ROW.homo_breakeven == pytest.approx(2.5)
        assert self.ROW.het_breakeven == pytest.approx(1.5)


class TestSnuRow:
    def test_improvement(self):
        row = SnuRow("A", area=1024.0, routes_before=50, routes_after=40, det_time=1.0)
        assert row.improvement == pytest.approx(20.0)

    def test_zero_routes_is_zero_improvement(self):
        row = SnuRow("A", area=1.0, routes_before=0, routes_after=0, det_time=1.0)
        assert row.improvement == 0.0


class TestFig9Row:
    ROW = Fig9Row(
        network="A",
        snu_packets_mean=100.0,
        snu_packets_std=5.0,
        pgo_packets_mean=90.0,
        pgo_packets_std=6.0,
        snu_det=1000.0,
        pgo_det=10.0,
        snu_wall=1.0,
        pgo_wall=0.1,
    )

    def test_packet_gain(self):
        assert self.ROW.packet_gain == pytest.approx(10.0)

    def test_solver_speedup(self):
        assert self.ROW.solver_speedup == pytest.approx(100.0)

    def test_zero_packets_graceful(self):
        row = Fig9Row("A", 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0)
        assert row.packet_gain == 0.0


class TestPixelGrid:
    def test_square_from_inputs(self):
        assert _pixel_grid_for(16) == (4, 4)
        assert _pixel_grid_for(17) == (4, 4)
        assert _pixel_grid_for(9) == (3, 3)

    def test_minimum_two(self):
        assert _pixel_grid_for(1) == (2, 2)
