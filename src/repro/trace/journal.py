"""Per-process span journals and the supervisor's merge protocol.

Every traced process owns one JSONL journal file in the shared trace
directory (``daemon-<pid>.jsonl``, ``worker-<i>-<pid>.jsonl``), appended
through the same flock/heal protocol as every other journal in the repo
(:mod:`repro.jsonlio`).  Because each record lands on disk as one whole
line, a SIGKILL'd worker loses at most its final torn line — everything
it recorded before dying stays readable.

The supervisor *merges*: it tails each worker journal (remembering a
byte offset per file) and appends the new complete lines into
``merged.jsonl``, so a trace survives worker-journal rotation and a
single file holds the fleet's history.  Readers scan every journal in
the directory and de-duplicate by record identity, so merge lag (or a
record present both in its source journal and the merged file) never
double-counts a span.
"""

from __future__ import annotations

import threading
from pathlib import Path

from .. import jsonlio

#: The supervisor-owned merge target inside a trace directory.
MERGED_NAME = "merged.jsonl"


class SpanJournal:
    """One process's span sink: buffer in memory, flush whole lines.

    ``flush_every`` bounds the buffer; the default of 1 makes every
    record durable immediately — span volume is a few dozen per job, so
    a flock+write per record is noise next to the solves being traced.
    Hot emitters (BnB progress) may batch by passing a larger value.
    """

    def __init__(self, path: str | Path, flush_every: int = 1) -> None:
        self.path = Path(path)
        self.flush_every = max(1, flush_every)
        self._buffer: list[bytes] = []
        self._lock = threading.Lock()
        self._handle = None
        self._closed = False

    def record(self, payload: dict) -> None:
        """Queue one record; flushes once the buffer fills."""
        line = jsonlio.dump_line(payload)
        with self._lock:
            if self._closed:
                return
            self._buffer.append(line)
            if len(self._buffer) >= self.flush_every:
                self._flush_locked()

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        data = b"".join(self._buffer)
        self._buffer.clear()
        try:
            if self._handle is None or self._handle.closed:
                self._handle = jsonlio.open_append(self.path)
            jsonlio.append_records(self._handle, data)
        except OSError:  # disk trouble must never kill a solve
            pass

    def close(self) -> None:
        with self._lock:
            self._flush_locked()
            self._closed = True
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "SpanJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def merge_journal(source: str | Path, dest: str | Path, offset: int = 0) -> int:
    """Append ``source``'s complete lines past ``offset`` onto ``dest``.

    Returns the new offset (pass it back next time).  Only whole lines
    move: a torn tail mid-write stays behind until its newline lands.
    Missing sources are fine — a worker that never traced has no file.
    """
    source = Path(source)
    try:
        with source.open("rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except OSError:
        return offset
    if not data:
        return offset
    cut = data.rfind(b"\n") + 1
    if cut == 0:
        return offset
    with jsonlio.open_append(Path(dest)) as dest_handle:
        jsonlio.append_records(dest_handle, data[:cut])
    return offset + cut


def read_trace_dir(
    trace_dir: str | Path, trace_id: str | None = None
) -> list[dict]:
    """Every unique span/event record in a trace directory's journals.

    Scans ``*.jsonl`` (per-process journals *and* the merged file),
    filters to ``trace_id`` when given, and de-duplicates by record
    identity — merged copies and their originals collapse to one.
    Span records sort by start time, events by timestamp.
    """
    trace_dir = Path(trace_dir)
    if not trace_dir.is_dir():
        return []
    seen: set[bytes] = set()
    records: list[dict] = []
    for path in sorted(trace_dir.glob("*.jsonl")):
        for record in jsonlio.read_jsonl(path):
            if trace_id is not None and record.get("trace") != trace_id:
                continue
            key = jsonlio.dump_line(record)
            if key in seen:
                continue
            seen.add(key)
            records.append(record)
    records.sort(
        key=lambda r: (float(r.get("start", r.get("ts")) or 0.0), str(r.get("span") or ""))
    )
    return records
