"""Per-client admission control: token-bucket rates and in-flight quotas.

The front door of the multi-tenant daemon.  Every submission is
attributed to a client id (the ``X-Repro-Client`` header, default
``anonymous``) and passes through one :class:`AdmissionController`
*before* the job registry ever sees it, so a rejection is a clean 429
with a per-client ``Retry-After`` — never a half-accepted job.

Two independent limits, both opt-in:

- **rate** — a token bucket per client: ``rate`` tokens/second refill up
  to ``burst`` capacity; each admission spends one.  An empty bucket
  rejects with ``retry_after = deficit / rate``, the exact time until
  the next token, so one greedy submitter self-throttles while clients
  under their rate never notice.
- **max_in_flight** — a cap on jobs a client may have accepted-but-not-
  terminal (queued *or* running).  Released when the job reaches any
  terminal state; restored across restarts from the replayed registry.

With neither limit configured the controller still runs — it is also
the per-client accounting (`admitted`/`throttled`/`in_flight`) that
``/metrics`` reports.  Client cardinality is bounded: idle clients are
evicted once the table outgrows ``max_clients``, so unbounded spoofed
ids cost an attacker their own rate state, not the daemon's memory.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..batch.queue import QueueFull

#: Idle client records kept before the oldest are evicted.
DEFAULT_MAX_CLIENTS = 1024


class AdmissionDenied(QueueFull):
    """A submission refused by per-client quota (maps to HTTP 429).

    Subclasses :class:`~repro.batch.queue.QueueFull` so the HTTP front's
    backpressure path (429 + ``Retry-After``) handles both global queue
    pressure and per-client throttling identically.
    """

    def __init__(
        self,
        message: str,
        retry_after: float | None = None,
        client: str = "",
        reason: str = "",
    ) -> None:
        super().__init__(message, retry_after=retry_after)
        self.client = client
        self.reason = reason  # "rate" | "in_flight"


class _ClientState:
    __slots__ = ("tokens", "refilled_at", "in_flight", "admitted", "throttled")

    def __init__(self, tokens: float, now: float) -> None:
        self.tokens = tokens
        self.refilled_at = now
        self.in_flight = 0
        self.admitted = 0
        self.throttled = 0


class AdmissionController:
    """Thread-safe per-client token buckets + in-flight quotas.

    ``rate`` is tokens/second per client (``None`` disables rate
    limiting), ``burst`` the bucket capacity (default ``max(1, 2*rate)``)
    and ``max_in_flight`` the per-client accepted-but-unfinished cap
    (``None`` disables it).  ``clock`` is injectable for deterministic
    tests.
    """

    def __init__(
        self,
        rate: float | None = None,
        burst: float | None = None,
        max_in_flight: int | None = None,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be > 0 (or None to disable)")
        if burst is not None and burst < 1:
            raise ValueError("burst must be >= 1")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 (or None to disable)")
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.rate = rate
        self.burst = (
            burst
            if burst is not None
            else (max(1.0, 2.0 * rate) if rate is not None else 1.0)
        )
        self.max_in_flight = max_in_flight
        self.max_clients = max_clients
        self._clock = clock
        self._clients: dict[str, _ClientState] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _state(self, client: str, now: float) -> _ClientState:
        # Caller holds the lock.  Insertion order doubles as least-
        # recently-admitted order because touched entries are re-inserted.
        state = self._clients.pop(client, None)
        if state is None:
            state = _ClientState(self.burst, now)
            self._evict(client)
        self._clients[client] = state
        return state

    def _evict(self, incoming: str) -> None:
        # Caller holds the lock.  Drop the stalest idle clients; a
        # client with jobs in flight is never evicted (its release
        # accounting must survive).
        if len(self._clients) < self.max_clients:
            return
        for name, state in list(self._clients.items()):
            if state.in_flight == 0 and name != incoming:
                del self._clients[name]
                if len(self._clients) < self.max_clients:
                    return

    def _refill(self, state: _ClientState, now: float) -> None:
        if self.rate is None:
            return
        elapsed = max(0.0, now - state.refilled_at)
        state.tokens = min(self.burst, state.tokens + elapsed * self.rate)
        state.refilled_at = now

    # ------------------------------------------------------------------
    def admit(self, client: str, now: float | None = None) -> None:
        """Count one submission for ``client`` or raise :class:`AdmissionDenied`.

        On success the client's in-flight count is charged; callers must
        :meth:`release` it when the job reaches a terminal state (or on
        any failure before the job is actually registered).
        """
        now = self._clock() if now is None else now
        with self._lock:
            state = self._state(client, now)
            self._refill(state, now)
            if (
                self.max_in_flight is not None
                and state.in_flight >= self.max_in_flight
            ):
                state.throttled += 1
                raise AdmissionDenied(
                    f"client {client!r} has {state.in_flight} job(s) in "
                    f"flight (limit {self.max_in_flight}); wait for one "
                    "to finish",
                    client=client,
                    reason="in_flight",
                )
            if self.rate is not None and state.tokens < 1.0:
                state.throttled += 1
                raise AdmissionDenied(
                    f"client {client!r} is over its {self.rate:g}/s "
                    "submission rate",
                    retry_after=(1.0 - state.tokens) / self.rate,
                    client=client,
                    reason="rate",
                )
            if self.rate is not None:
                state.tokens -= 1.0
            state.admitted += 1
            state.in_flight += 1

    def release(self, client: str) -> None:
        """One of ``client``'s in-flight jobs reached a terminal state."""
        with self._lock:
            state = self._clients.get(client)
            if state is not None:
                state.in_flight = max(0, state.in_flight - 1)

    def restore(self, client: str, now: float | None = None) -> None:
        """Re-charge in-flight for a job replayed unfinished at startup.

        Restored jobs were admitted by a previous process: they count
        against the quota (they will run and finish here) but not
        against this process's ``admitted`` counter or token bucket.
        """
        now = self._clock() if now is None else now
        with self._lock:
            self._state(client, now).in_flight += 1

    # ------------------------------------------------------------------
    def in_flight(self, client: str) -> int:
        with self._lock:
            state = self._clients.get(client)
            return state.in_flight if state is not None else 0

    def snapshot(self) -> dict:
        """The ``/metrics``/``/healthz`` admission section."""
        with self._lock:
            clients = {
                name: {
                    "admitted": state.admitted,
                    "throttled": state.throttled,
                    "in_flight": state.in_flight,
                }
                for name, state in self._clients.items()
            }
            return {
                "rate": self.rate,
                "burst": self.burst if self.rate is not None else None,
                "max_in_flight": self.max_in_flight,
                "clients": clients,
                "admitted": sum(c["admitted"] for c in clients.values()),
                "throttled": sum(c["throttled"] for c in clients.values()),
                "in_flight": sum(c["in_flight"] for c in clients.values()),
            }
