"""Multi-crossbar neuromorphic processor model.

Executes a *mapped* network: the functional behaviour comes from the plain
SNN simulator (placement never changes spike semantics), while this module
accounts for the communication the placement induces, using exactly the
packet rule the paper's PGO assumes (§IV-D):

    "the architecture sends only one network packet per crossbar target
    per neuron fire ... if neuron X targets both neurons Y and Z within
    crossbar j, only one packet should be generated per spike of X."

A packet whose source neuron lives in the target crossbar is *local* (it
never enters the chip router network); every other packet is *global*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..snn.network import Network
from ..snn.simulator import SimulationResult, Simulator
from .architecture import Architecture
from .noc import MeshNoC, hop_weighted_packets


@dataclass(frozen=True)
class TrafficReport:
    """Communication accounting for one simulated run."""

    total_spikes: int
    local_packets: int
    global_packets: int
    hop_packets: int  # global packets weighted by mesh hop distance
    max_link_load: int
    per_crossbar_packets: dict[int, int]  # destination crossbar -> packets

    @property
    def total_packets(self) -> int:
        return self.local_packets + self.global_packets


def target_crossbars(
    network: Network, assignment: Mapping[int, int]
) -> dict[int, set[int]]:
    """For each neuron, the set of crossbars hosting at least one successor.

    This is the runtime realization of the ILP's ``s[k, j]`` column for
    source ``k``: crossbar ``j`` receives ``k`` as an axonal input iff some
    successor of ``k`` is placed on ``j``.
    """
    targets: dict[int, set[int]] = {}
    for nid in network.neuron_ids():
        targets[nid] = {assignment[succ] for succ in network.successors(nid)}
    return targets


def count_packets(
    network: Network,
    assignment: Mapping[int, int],
    spike_counts: Mapping[int, int],
) -> tuple[int, int, dict[tuple[int, int], int]]:
    """Aggregate (local, global, per-pair) packet counts from spike counts.

    Every spike of neuron ``k`` generates one packet per distinct target
    crossbar; the packet to ``k``'s own crossbar (if any) is local.
    """
    targets = target_crossbars(network, assignment)
    local = 0
    global_ = 0
    pair_counts: dict[tuple[int, int], int] = {}
    for nid, crossbars in targets.items():
        fires = spike_counts.get(nid, 0)
        if fires == 0 or not crossbars:
            continue
        home = assignment[nid]
        for dst in crossbars:
            if dst == home:
                local += fires
            else:
                global_ += fires
                key = (home, dst)
                pair_counts[key] = pair_counts.get(key, 0) + fires
    return local, global_, pair_counts


class MappedProcessor:
    """A network placed onto an architecture, ready to execute."""

    def __init__(
        self,
        network: Network,
        assignment: Mapping[int, int],
        architecture: Architecture,
    ) -> None:
        missing = set(network.neuron_ids()) - set(assignment)
        if missing:
            raise ValueError(f"assignment missing neurons {sorted(missing)[:5]}")
        bad = {j for j in assignment.values() if not 0 <= j < architecture.num_slots}
        if bad:
            raise ValueError(f"assignment targets unknown crossbars {sorted(bad)}")
        self.network = network
        self.assignment = dict(assignment)
        self.architecture = architecture
        self.noc = MeshNoC(architecture.num_slots)
        self._simulator = Simulator(network)

    def run(
        self,
        duration: int,
        input_spikes: Mapping[int, list[int]] | None = None,
    ) -> tuple[SimulationResult, TrafficReport]:
        """Simulate and account for the induced crossbar traffic."""
        sim_result = self._simulator.run(duration, input_spikes=input_spikes)
        report = self.traffic_from_counts(sim_result.spike_counts)
        return sim_result, report

    def traffic_from_counts(self, spike_counts: Mapping[int, int]) -> TrafficReport:
        """Traffic report for externally supplied per-neuron spike counts."""
        local, global_, pair_counts = count_packets(
            self.network, self.assignment, spike_counts
        )
        hop_packets, link_load = hop_weighted_packets(self.noc, pair_counts)
        per_crossbar: dict[int, int] = {}
        for (_, dst), packets in pair_counts.items():
            per_crossbar[dst] = per_crossbar.get(dst, 0) + packets
        return TrafficReport(
            total_spikes=sum(spike_counts.values()),
            local_packets=local,
            global_packets=global_,
            hop_packets=hop_packets,
            max_link_load=link_load.max_link_load,
            per_crossbar_packets=per_crossbar,
        )
