"""CLI wiring for `repro serve` / `repro submit`.

The daemon process itself is exercised end to end by the CI
``service-smoke`` job; here `submit` runs against the in-process daemon
fixture and `serve` is checked at the parser level.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.service


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8100
        assert args.workers == 1
        assert args.store is None
        assert not args.portfolio

    def test_serve_fleet_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.fleet == 0
        assert args.ledger is None
        assert args.max_queue is None
        assert args.lease_ttl == 15.0
        assert args.heartbeat_interval == 3.0
        assert args.max_attempts == 3
        assert args.store_shards is None
        assert args.drain_timeout == 20.0

    def test_serve_fleet_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--fleet",
                "4",
                "--ledger",
                "/tmp/ledger.jsonl",
                "--max-queue",
                "32",
                "--lease-ttl",
                "8",
                "--heartbeat-interval",
                "1",
                "--max-attempts",
                "5",
                "--store-shards",
                "16",
                "--drain-timeout",
                "3",
            ]
        )
        assert args.fleet == 4
        assert args.ledger == "/tmp/ledger.jsonl"
        assert args.max_queue == 32
        assert args.lease_ttl == 8.0
        assert args.heartbeat_interval == 1.0
        assert args.max_attempts == 5
        assert args.store_shards == 16
        assert args.drain_timeout == 3.0

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit"])
        assert args.url == "http://127.0.0.1:8100"
        assert args.tier == "ilp"
        assert args.stages == ["area"]
        assert not args.stream
        assert args.retries == 0

    def test_submit_rejects_unknown_axis_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--network", "Z"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--tier", "quantum"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--stages", "quantum"])


class TestSubmitEndToEnd:
    def _url(self, live_service) -> str:
        _, client = live_service
        return client.base_url

    def test_submit_waits_and_reports(self, live_service, capsys):
        status = main(
            [
                "submit",
                "--url",
                self._url(live_service),
                "--network",
                "C",
                "--scale",
                "0.1",
                "--homogeneous",
                "--dimension",
                "12",
                "--time-limit",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "submitted job-" in out
        assert "Cx0.1-uniform/homo12/area" in out
        assert "done" in out

    def test_submit_stream_prints_ndjson_events(self, live_service, capsys):
        status = main(
            [
                "submit",
                "--url",
                self._url(live_service),
                "--network",
                "C",
                "--scale",
                "0.1",
                "--homogeneous",
                "--dimension",
                "12",
                "--tier",
                "greedy",
                "--stream",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        events = [
            json.loads(line)["event"]
            for line in out.splitlines()
            if line.startswith("{")
        ]
        assert events[0] == "queued"
        assert "result" in events
        assert events[-1] == "done"

    def test_submit_spec_file_and_json_output(
        self, live_service, tiny_scenario, tmp_path, capsys
    ):
        spec_path = tmp_path / "job.json"
        spec_path.write_text(
            json.dumps({"scenario": tiny_scenario.payload(), "time_limit": 5.0})
        )
        out_path = tmp_path / "detail.json"
        status = main(
            [
                "submit",
                "--url",
                self._url(live_service),
                "--spec",
                str(spec_path),
                "--json",
                str(out_path),
            ]
        )
        assert status == 0
        detail = json.loads(out_path.read_text())
        assert detail["status"] == "done"
        assert detail["results"][0]["scenario"] == tiny_scenario.name

    def test_submit_against_no_server_exits_2(self, capsys):
        status = main(
            ["submit", "--url", "http://127.0.0.1:9", "--timeout", "2"]
        )
        assert status == 2
        assert "service error" in capsys.readouterr().err

    def test_submit_invalid_time_limit_exits_2_cleanly(self, capsys):
        status = main(["submit", "--time-limit", "0"])
        assert status == 2
        assert "invalid submission" in capsys.readouterr().err

    def test_failed_job_exits_1(self, live_service, tmp_path, capsys):
        """An unknown Table-I twin fails scenario-side, not wire-side."""
        _, client = live_service
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(
            json.dumps(
                {
                    "scenario": {
                        "kind": "scenario",
                        "workload": {"network": "Z", "scale": 0.1},
                    }
                }
            )
        )
        status = main(
            ["submit", "--url", client.base_url, "--spec", str(spec_path)]
        )
        assert status == 1
        assert "error" in capsys.readouterr().out

    def test_stream_drop_exits_3(self, live_service, monkeypatch, capsys):
        """A dropped stream is exit 3 — the job was accepted, only the
        watch broke — distinct from exit 2 (service/spec errors)."""
        from repro.service.client import ServiceClient, StreamInterrupted

        def dropped_stream(self, job_id, keepalives=False, timeout=None):
            raise StreamInterrupted(f"stream of job {job_id} dropped mid-job")
            yield  # pragma: no cover - makes this a generator

        monkeypatch.setattr(ServiceClient, "stream", dropped_stream)
        status = main(
            [
                "submit",
                "--url",
                self._url(live_service),
                "--tier",
                "greedy",
                "--stream",
            ]
        )
        err = capsys.readouterr().err
        assert status == 3
        assert "stream interrupted" in err
        assert "may still finish" in err
