"""Unit + property tests for the vectorized Pareto machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dse.pareto import (
    crowding_distance,
    frontier_diff,
    hypervolume,
    nondominated_mask,
    pareto_rank,
    reference_point,
)

pytestmark = pytest.mark.dse


def _brute_force_mask(points: np.ndarray) -> np.ndarray:
    keep = np.ones(len(points), dtype=bool)
    for b in range(len(points)):
        for a in range(len(points)):
            if a == b:
                continue
            if (points[a] <= points[b]).all() and (points[a] < points[b]).any():
                keep[b] = False
                break
    return keep


@st.composite
def point_clouds(draw):
    n = draw(st.integers(1, 24))
    d = draw(st.integers(1, 4))
    values = draw(
        st.lists(
            st.lists(
                st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
                min_size=d,
                max_size=d,
            ),
            min_size=n,
            max_size=n,
        )
    )
    return np.array(values, dtype=np.float64)


class TestNondominatedMask:
    def test_empty(self):
        assert nondominated_mask(np.zeros((0, 3))).shape == (0,)

    def test_single_point_is_frontier(self):
        assert nondominated_mask([[1.0, 2.0]]).tolist() == [True]

    def test_duplicates_never_eject_each_other(self):
        mask = nondominated_mask([[1.0, 2.0], [1.0, 2.0]])
        assert mask.tolist() == [True, True]

    def test_known_frontier(self):
        pts = [[1, 4], [2, 2], [4, 1], [3, 3], [4, 4]]
        assert nondominated_mask(pts).tolist() == [True, True, True, False, False]

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            nondominated_mask([[np.nan, 1.0]])

    @settings(max_examples=60, deadline=None)
    @given(point_clouds())
    def test_matches_brute_force(self, pts):
        assert nondominated_mask(pts).tolist() == _brute_force_mask(pts).tolist()


class TestParetoRank:
    def test_peels_fronts(self):
        pts = [[1, 1], [2, 2], [3, 3]]
        assert pareto_rank(pts).tolist() == [0, 1, 2]

    @settings(max_examples=40, deadline=None)
    @given(point_clouds())
    def test_rank_zero_is_the_frontier(self, pts):
        ranks = pareto_rank(pts)
        assert ((ranks == 0) == nondominated_mask(pts)).all()
        assert (ranks >= 0).all()

    @settings(max_examples=40, deadline=None)
    @given(point_clouds())
    def test_every_front_is_nondominated_within_itself(self, pts):
        ranks = pareto_rank(pts)
        for front in np.unique(ranks):
            members = pts[ranks == front]
            assert nondominated_mask(members).all()


class TestCrowdingDistance:
    def test_boundaries_are_infinite(self):
        pts = [[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]]
        dist = crowding_distance(pts)
        assert np.isinf(dist[0]) and np.isinf(dist[2])
        assert np.isfinite(dist[1])

    def test_isolated_point_beats_clustered(self):
        # Index 2 sits in a tight cluster; index 1 has room on both sides.
        pts = [[0.0, 10.0], [4.9, 5.1], [5.0, 5.0], [5.1, 4.9], [10.0, 0.0]]
        dist = crowding_distance(pts)
        assert np.isfinite(dist[1]) and np.isfinite(dist[2])
        assert dist[2] < dist[1]


class TestHypervolume:
    def test_single_point_box(self):
        assert hypervolume([[1.0, 1.0]], [3.0, 2.0]) == pytest.approx(2.0)

    def test_2d_staircase(self):
        pts = [[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]]
        # x-sweep slabs: (2-1)*(4-3) + (3-2)*(4-2) + (4-3)*(4-1) = 6.
        assert hypervolume(pts, [4.0, 4.0]) == pytest.approx(6.0)

    def test_3d_single_point(self):
        assert hypervolume([[1.0, 1.0, 1.0]], [2.0, 3.0, 4.0]) == pytest.approx(6.0)

    def test_point_outside_reference_contributes_nothing(self):
        assert hypervolume([[5.0, 5.0]], [4.0, 4.0]) == 0.0

    def test_dominated_points_do_not_change_volume(self):
        frontier = [[1.0, 3.0], [3.0, 1.0]]
        padded = frontier + [[3.0, 3.0], [2.5, 3.5]]
        ref = [4.0, 4.0]
        assert hypervolume(padded, ref) == pytest.approx(hypervolume(frontier, ref))

    @settings(max_examples=40, deadline=None)
    @given(point_clouds())
    def test_monotone_in_points(self, pts):
        """Adding points never shrinks the dominated volume."""
        ref = reference_point(pts)
        full = hypervolume(pts, ref)
        subset = hypervolume(pts[: max(1, len(pts) // 2)], ref)
        assert full >= subset - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(point_clouds())
    def test_3d_agrees_with_2d_extrusion(self, pts):
        """Appending a constant coordinate scales volume by its clearance."""
        ref = reference_point(pts)
        base = hypervolume(pts, ref)
        extruded = np.hstack([pts, np.zeros((len(pts), 1))])
        ref3 = np.append(ref, 2.0)
        assert hypervolume(extruded, ref3) == pytest.approx(2.0 * base, rel=1e-9)


class TestFrontierDiff:
    def test_identical_frontiers_retain_everything(self):
        pts = [[1.0, 3.0], [3.0, 1.0]]
        diff = frontier_diff(pts, pts)
        assert diff.gained == ()
        assert diff.lost == ()
        assert diff.retained == (0, 1)
        assert diff.hv_ratio == pytest.approx(1.0)

    def test_strict_improvement_is_gained_not_lost(self):
        diff = frontier_diff([[2.0, 2.0]], [[1.0, 1.0]])
        assert diff.gained == (0,)
        assert diff.lost == ()  # the old point is covered by the new one
        assert diff.hv_ratio > 1.0

    def test_abandoned_tradeoff_point_is_lost(self):
        diff = frontier_diff([[1.0, 3.0], [3.0, 1.0]], [[1.0, 3.0]])
        assert diff.lost == (1,)
        assert diff.retained == (0,)
        assert diff.hv_ratio < 1.0

    def test_empty_frontiers(self):
        diff = frontier_diff(np.zeros((0, 2)), np.zeros((0, 2)))
        assert diff.hv_a == diff.hv_b == 0.0
        assert diff.hv_ratio == 1.0

    def test_mismatched_dimensions_rejected(self):
        with pytest.raises(ValueError, match="objective spaces"):
            frontier_diff([[1.0, 2.0]], [[1.0, 2.0, 3.0]])


class TestReferencePoint:
    def test_margin_clears_the_nadir(self):
        ref = reference_point([[1.0, 10.0], [2.0, 0.0]], margin=1.5)
        assert ref[0] == pytest.approx(3.0)
        assert ref[1] == pytest.approx(15.0)

    def test_zero_coordinate_still_gets_clearance(self):
        ref = reference_point([[0.0, 0.0]], margin=1.1)
        assert (ref > 0).all()

    def test_no_points_rejected(self):
        with pytest.raises(ValueError, match="no points"):
            reference_point(np.zeros((0, 2)))
