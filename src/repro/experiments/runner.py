"""Experiment orchestration and reporting.

One :class:`ExperimentConfig` parameterizes every exhibit reproduction
(network scale, solver budgets, pool sizes).  The module doubles as a CLI:

    python -m repro.experiments.runner --exhibit fig2 --scale 0.15
    python -m repro.experiments.runner --exhibit all --full

``--full`` runs paper-scale networks with long budgets (hours, as in the
paper, which reported 5-hour solver limits); the default configuration is
sized for minutes on a laptop while preserving every qualitative shape.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared experiment parameters."""

    scale: float = 0.25  # Table-I twin scaling factor
    seed: int = 7
    homo_dim: int = 16  # §V-C: 16x16 homogeneous crossbars
    homo_slack: float = 1.5
    het_slots_per_type: int = 12
    area_time_limit: float = 15.0  # seconds of HiGHS wall time
    route_time_limit: float = 8.0
    trace_slices: int = 6  # time-sliced re-solves for evolution traces
    profile_fraction: float = 0.01  # §V-H: 1% PGO sample
    sim_window: int = 24
    num_samples: int = 400
    encoding: str = "ttfs"  # detector hits are single spikes per pixel
    jobs: int = 1  # worker processes for multi-network sweeps
    portfolio: bool = False  # race HiGHS vs B&B per solve

    def full_scale(self) -> "ExperimentConfig":
        """Paper-scale variant (hours of solver time)."""
        return replace(
            self,
            scale=1.0,
            area_time_limit=3600.0,
            route_time_limit=1800.0,
            het_slots_per_type=64,
        )


def format_table(headers: list[str], rows: list[tuple]) -> str:
    """Fixed-width text table (the harness's terminal 'figure')."""
    str_rows = [
        [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in str_rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


EXHIBITS = (
    "table1",
    "table2",
    "ablation",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
)


def run_exhibit(name: str, config: ExperimentConfig) -> str:
    """Run one exhibit reproduction and return its text report."""
    # Imports are local so `--exhibit table1` does not pay for the others.
    if name == "table1":
        from .table1 import run_table1

        return run_table1(config)
    if name == "table2":
        from .table2 import run_table2

        return run_table2(config)
    if name == "ablation":
        from .ablation import run_ablation

        return run_ablation(config).report
    if name == "fig2":
        from .fig2 import run_fig2

        return run_fig2(config).report
    if name == "fig3":
        from .fig3 import run_fig3

        return run_fig3(config).report
    if name == "fig5":
        from .fig5 import run_fig5

        return run_fig5(config).report
    if name == "fig6":
        from .fig6 import run_fig6

        return run_fig6(config).report
    if name == "fig7":
        from .fig7 import run_fig7

        return run_fig7(config).report
    if name == "fig8":
        from .fig8 import run_fig8

        return run_fig8(config).report
    if name == "fig9":
        from .fig9 import run_fig9

        return run_fig9(config).report
    raise KeyError(f"unknown exhibit {name!r}; choose from {EXHIBITS}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    parser.add_argument(
        "--exhibit",
        default="all",
        help=f"one of {EXHIBITS} or 'all'",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--area-time-limit", type=float, default=None)
    parser.add_argument("--route-time-limit", type=float, default=None)
    parser.add_argument(
        "--full", action="store_true", help="paper-scale networks and budgets"
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for multi-network sweeps (default 1 = serial)",
    )
    parser.add_argument(
        "--portfolio", action="store_true",
        help="race HiGHS against branch-and-bound per ILP solve and keep "
             "the best (evolution traces always use HiGHS time slicing)",
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig()
    if args.full:
        config = config.full_scale()
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.area_time_limit is not None:
        overrides["area_time_limit"] = args.area_time_limit
    if args.route_time_limit is not None:
        overrides["route_time_limit"] = args.route_time_limit
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.portfolio:
        overrides["portfolio"] = True
    if overrides:
        config = replace(config, **overrides)

    names = EXHIBITS if args.exhibit == "all" else (args.exhibit,)
    for name in names:
        print(f"=== {name} ===")
        print(run_exhibit(name, config))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
