"""Hierarchical (partition-then-ILP) mapping for large networks.

The exact formulation's variable count grows as O(neurons x slots), which
is why the paper reports 5-hour solves on 229-neuron networks.  This
module implements the standard scaling remedy the approximate prior work
[20]-[23] uses, but with the paper's exact ILP inside: partition the
network into regions, area-optimize each region against its own slot
budget, then run a boundary-refinement pass.

This trades global optimality for near-linear scaling while keeping the
axon-sharing arithmetic exact *within* regions — a practical extension of
the paper for networks an order of magnitude larger than Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..ilp.highs_backend import HighsBackend, HighsOptions
from ..mca.architecture import Architecture
from .axon_sharing import AreaModel, FormulationOptions
from .greedy import greedy_first_fit
from .kl_partition import kl_refine
from .problem import MappingProblem
from .solution import Mapping


@dataclass(frozen=True)
class HierarchicalOptions:
    """Partitioning and per-region solver budgets."""

    region_size: int = 48  # target neurons per region
    region_time_limit: float = 10.0  # HiGHS seconds per region
    refine: bool = True  # boundary KL pass after stitching

    def __post_init__(self) -> None:
        if self.region_size < 4:
            raise ValueError("region_size must be at least 4")
        if self.region_time_limit <= 0:
            raise ValueError("region_time_limit must be positive")


def partition_regions(problem: MappingProblem, region_size: int) -> list[list[int]]:
    """Split the network into connectivity-coherent regions.

    Greedy agglomeration over weakly connected components: components are
    packed whole while they fit; oversized components are split by BFS
    order.  Deterministic.
    """
    graph = problem.network.to_networkx()
    regions: list[list[int]] = []
    current: list[int] = []
    for component in sorted(
        nx.weakly_connected_components(graph), key=lambda c: (-len(c), min(c))
    ):
        nodes = sorted(component)
        if len(nodes) > region_size:
            # Split a big component along BFS layers from its min node.
            order = list(nx.bfs_tree(graph.to_undirected(as_view=True), nodes[0]))
            order += [n for n in nodes if n not in set(order)]
            for start in range(0, len(order), region_size):
                regions.append(sorted(order[start : start + region_size]))
            continue
        if len(current) + len(nodes) > region_size and current:
            regions.append(current)
            current = []
        current.extend(nodes)
    if current:
        regions.append(current)
    return regions


def _region_problem(
    problem: MappingProblem, region: list[int], free_slots: list[int]
) -> tuple[MappingProblem, dict[int, int], dict[int, int]]:
    """Build the induced sub-problem on a region over the free slots.

    Returns (sub-problem, neuron relabel old->new, slot relabel new->old).
    Axons arriving from outside the region are *not* modelled (they cost
    input lines wherever their consumers land, which the stitcher
    re-checks), so regions are solved slightly optimistically and repaired
    afterwards.
    """
    sub_net = problem.network.subnetwork(region)
    compact, neuron_map = sub_net.compact()
    arch = problem.architecture
    from ..mca.crossbar import CrossbarSlot

    slots = tuple(
        CrossbarSlot(pos, arch.slot(j).ctype) for pos, j in enumerate(free_slots)
    )
    sub_arch = Architecture(f"region-{min(region)}", slots)
    slot_map = {pos: j for pos, j in enumerate(free_slots)}
    return MappingProblem(compact, sub_arch), neuron_map, slot_map


def hierarchical_map(
    problem: MappingProblem,
    options: HierarchicalOptions | None = None,
) -> Mapping:
    """Partition, solve each region with the exact ILP, stitch, repair.

    Falls back to greedy placement for any region whose ILP solve fails
    to produce a solution within its budget, so a valid mapping is always
    returned.
    """
    opts = options or HierarchicalOptions()
    regions = partition_regions(problem, opts.region_size)
    assignment: dict[int, int] = {}
    used_slots: set[int] = set()

    for region in regions:
        free = [s.index for s in problem.architecture.slots if s.index not in used_slots]
        if not free:
            raise RuntimeError("architecture pool exhausted during stitching")
        sub_problem, neuron_map, slot_map = _region_problem(problem, region, free)
        try:
            warm = greedy_first_fit(sub_problem)
            handle = AreaModel(sub_problem, FormulationOptions())
            result = HighsBackend(
                HighsOptions(time_limit=opts.region_time_limit)
            ).solve(handle.model, warm_start=handle.warm_start_from(warm))
            sub_mapping = handle.extract_mapping(result)
        except (RuntimeError, ValueError):
            sub_mapping = greedy_first_fit(sub_problem)
        inverse_neurons = {new: old for old, new in neuron_map.items()}
        for new_id, sub_slot in sub_mapping.assignment.items():
            assignment[inverse_neurons[new_id]] = slot_map[sub_slot]
        used_slots.update(slot_map[j] for j in sub_mapping.enabled_slots())

    mapping = Mapping(problem, assignment)
    mapping = _repair_cross_region_overflow(mapping)
    if opts.refine:
        mapping = kl_refine(problem, mapping, max_passes=2)
    return mapping


def _repair_cross_region_overflow(mapping: Mapping) -> Mapping:
    """Fix input-line overflows caused by cross-region axons.

    Region solves ignore axons whose sources live elsewhere; after
    stitching, a crossbar may exceed its word-lines.  Overflowing
    crossbars evict their highest-external-fan-in neurons to any slot
    with room until valid.
    """
    problem = mapping.problem
    assignment = dict(mapping.assignment)

    def members_of(j: int) -> set[int]:
        return {i for i, jj in assignment.items() if jj == j}

    def slot_valid(j: int) -> bool:
        group = members_of(j)
        if not group:
            return True
        spec = problem.architecture.slot(j)
        return (
            len(group) <= spec.outputs
            and problem.axon_demand(group) <= spec.inputs
        )

    def overflow_of(j: int) -> int:
        group = members_of(j)
        if not group:
            return 0
        spec = problem.architecture.slot(j)
        over_out = max(0, len(group) - spec.outputs)
        over_in = max(0, problem.axon_demand(group) - spec.inputs)
        return over_out + over_in

    for _ in range(4 * problem.num_neurons):
        bad = [
            j for j in sorted(set(assignment.values())) if overflow_of(j) > 0
        ]
        if not bad:
            break
        j = bad[0]
        before = overflow_of(j)
        members = sorted(members_of(j), key=lambda i: -len(problem.preds(i)))
        evicted = False
        for neuron in members:
            for slot in problem.architecture.slots:
                if slot.index == j:
                    continue
                assignment[neuron] = slot.index
                # Accept any eviction that keeps the destination valid and
                # strictly shrinks the victim's overflow — full repair may
                # take several evictions.
                if slot_valid(slot.index) and overflow_of(j) < before:
                    evicted = True
                    break
                assignment[neuron] = j
            if evicted:
                break
        if not evicted:
            raise RuntimeError("could not repair cross-region axon overflow")

    repaired = Mapping(problem, assignment)
    issues = repaired.validate()
    if issues:
        raise RuntimeError(f"hierarchical stitching left violations: {issues[:3]}")
    return repaired
