"""Greedy first-fit mapper.

Produces valid (not optimal) mappings fast.  Three roles in the
reproduction: the a-priori initial solution SpikeHard requires, the warm
start that seeds both ILP backends, and a sanity baseline in benchmarks.

The packer is axon-sharing-aware: a neuron fits a slot iff adding it keeps
both the output count within ``N_j`` and the *distinct* axon-input set
within ``A_j``.  Neurons are visited in BFS order over the underlying
undirected graph (keeping connected neighbourhoods together), and a new
slot — when needed — is chosen to minimize the area increment.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterable

from .problem import MappingProblem
from .solution import Mapping


def _bfs_order(problem: MappingProblem) -> list[int]:
    """BFS over the undirected structure, seeded at max-degree neurons."""
    net = problem.network
    ids = net.neuron_ids()
    degree = {i: net.fan_in(i) + net.fan_out(i) for i in ids}
    visited: set[int] = set()
    order: list[int] = []
    for seed in sorted(ids, key=lambda i: -degree[i]):
        if seed in visited:
            continue
        queue = deque([seed])
        visited.add(seed)
        while queue:
            i = queue.popleft()
            order.append(i)
            neighbours = sorted(
                (net.predecessors(i) | net.successors(i)) - visited,
                key=lambda n: -degree[n],
            )
            for n in neighbours:
                visited.add(n)
                queue.append(n)
    return order


def _neuron_order(
    problem: MappingProblem, strategy: str, seed: int | None = None
) -> list[int]:
    net = problem.network
    if strategy == "bfs":
        return _bfs_order(problem)
    if strategy == "fan_in":
        return sorted(net.neuron_ids(), key=lambda i: -net.fan_in(i))
    if strategy == "id":
        return net.neuron_ids()
    if strategy == "random":
        order = net.neuron_ids()
        random.Random(seed).shuffle(order)
        return order
    raise ValueError(f"unknown ordering strategy {strategy!r}")


class _OpenSlot:
    """Mutable packing state for one crossbar slot."""

    __slots__ = ("index", "outputs_cap", "inputs_cap", "neurons", "axons")

    def __init__(self, index: int, outputs_cap: int, inputs_cap: int) -> None:
        self.index = index
        self.outputs_cap = outputs_cap
        self.inputs_cap = inputs_cap
        self.neurons: set[int] = set()
        self.axons: set[int] = set()

    def fits(self, neuron: int, preds: Iterable[int]) -> bool:
        if len(self.neurons) + 1 > self.outputs_cap:
            return False
        new_axons = set(preds) - self.axons
        return len(self.axons) + len(new_axons) <= self.inputs_cap

    def place(self, neuron: int, preds: Iterable[int]) -> None:
        self.neurons.add(neuron)
        self.axons.update(preds)


def greedy_first_fit(
    problem: MappingProblem, order: str = "bfs", seed: int | None = None
) -> Mapping:
    """First-fit-decreasing greedy placement.

    ``order`` picks the visiting strategy (``bfs``, ``fan_in``, ``id``, or
    ``random`` — the latter shuffled by ``seed`` for reproducible warm-start
    diversity).  Raises ``RuntimeError`` when the pool runs out of fitting
    slots (grow the architecture's slack in that case).
    """
    arch = problem.architecture
    open_slots: list[_OpenSlot] = []
    used_indices: set[int] = set()
    assignment: dict[int, int] = {}

    for neuron in _neuron_order(problem, order, seed):
        preds = problem.preds(neuron)
        placed = False
        for slot in open_slots:
            if slot.fits(neuron, preds):
                slot.place(neuron, preds)
                assignment[neuron] = slot.index
                placed = True
                break
        if placed:
            continue
        # Open the cheapest unused slot that can host this neuron alone.
        candidates = [
            s for s in arch.slots
            if s.index not in used_indices
            and s.outputs >= 1
            and s.inputs >= len(preds)
        ]
        if not candidates:
            raise RuntimeError(
                f"greedy packing failed: no free slot fits neuron {neuron} "
                f"(fan-in {len(preds)})"
            )
        best = min(candidates, key=lambda s: (s.area, s.index))
        new_slot = _OpenSlot(best.index, best.outputs, best.inputs)
        new_slot.place(neuron, preds)
        open_slots.append(new_slot)
        used_indices.add(best.index)
        assignment[neuron] = best.index

    mapping = Mapping(problem, assignment)
    issues = mapping.validate()
    if issues:  # pragma: no cover - the packer enforces capacities
        raise AssertionError(f"greedy produced an invalid mapping: {issues}")
    return mapping
