"""Spike profiling: from dataset samples to PGO weights.

Bridges the dataset, the encoder, and the simulator: every sample frame is
encoded onto the network's input neurons and simulated; per-neuron spike
counts accumulate into the :class:`~repro.mapping.pgo.SpikeProfile` that
objective 12 consumes.  The same machinery evaluates a finished mapping
over the held-out samples (per-sample global-packet counts — the error
bands of Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mapping.pgo import SpikeProfile
from ..mapping.solution import Mapping
from ..snn.encoding import encode_frame
from ..snn.network import Network
from ..snn.simulator import Simulator
from .smartpixel import PixelSample


def collect_profile(
    network: Network,
    samples: list[PixelSample],
    window: int = 24,
    method: str = "rate",
    engine: str | None = None,
) -> SpikeProfile:
    """Simulate every sample and accumulate per-neuron spike counts.

    ``engine`` selects the simulation engine (``"vector"`` default /
    ``"reference"``; see :mod:`repro.snn.engine`) — profiling simulates
    every dataset sample, so this is the knob that matters at sweep scale.
    """
    if window < 1:
        raise ValueError("window must be positive")
    input_ids = network.input_ids()
    if not input_ids:
        raise ValueError("network has no input neurons to encode onto")
    sim = Simulator(network, engine=engine)
    totals = {nid: 0 for nid in network.neuron_ids()}
    for sample in samples:
        spikes = encode_frame(sample.frame, input_ids, window, method)
        result = sim.run(window, input_spikes=spikes)
        for nid, count in result.spike_counts.items():
            totals[nid] += count
    return SpikeProfile(
        counts=totals,
        duration=window * len(samples),
        num_samples=len(samples),
    )


@dataclass(frozen=True)
class PacketEvaluation:
    """Per-sample global-packet statistics of a mapping over a dataset."""

    per_sample: list[int]

    @property
    def total(self) -> int:
        return sum(self.per_sample)

    @property
    def mean(self) -> float:
        return float(np.mean(self.per_sample)) if self.per_sample else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.per_sample)) if self.per_sample else 0.0

    def band(self, sigmas: float = 1.0) -> tuple[float, float]:
        """(low, high) error band around the mean."""
        return (self.mean - sigmas * self.std, self.mean + sigmas * self.std)


def evaluate_packets(
    mapping: Mapping,
    samples: list[PixelSample],
    window: int = 24,
    method: str = "rate",
    engine: str | None = None,
) -> PacketEvaluation:
    """Global packets the mapping generates on each evaluation sample."""
    network = mapping.problem.network
    input_ids = network.input_ids()
    if not input_ids:
        raise ValueError("network has no input neurons to encode onto")
    sim = Simulator(network, engine=engine)
    per_sample: list[int] = []
    for sample in samples:
        spikes = encode_frame(sample.frame, input_ids, window, method)
        result = sim.run(window, input_spikes=spikes)
        _, global_ = mapping.packet_count(result.spike_counts)
        per_sample.append(global_)
    return PacketEvaluation(per_sample=per_sample)
