"""The ``lp_round`` backend: LP relaxation + guided rounding, racing-fast.

An exact MILP solve on the mapping formulations spends nearly all of its
wall time in the root node (cuts, dual bound) before the first good
incumbent appears.  This backend inverts the trade: it solves only the LP
relaxation (one simplex call, milliseconds on these models), then rounds
to a feasible *incumbent* — never a proof — and returns immediately.

Rounding is delegated to the model when it knows better: builders attach
``model.rounding_guide`` (see :mod:`repro.mapping.rounding`), whose
delta-evaluated repair/improvement loop produces incumbents that match or
beat a node-capped exact solve's in a fraction of the time.  Models
without a guide fall back to the generic
:func:`~repro.ilp.greedy_rounding.lp_rounding_warm_start` fix-and-round,
and degrade to the caller's warm start when even that fails.

Contract highlights:

- the returned ``bound`` is the LP relaxation's optimum — a true dual
  bound for the integer program, so ``result.gap()`` is meaningful;
- any produced incumbent is verified against the lowered rows
  (``model.check_feasible``) before being reported — a guide bug degrades
  the result instead of propagating an infeasible "solution";
- status is ``OPTIMAL`` only when the incumbent's objective meets the LP
  bound (no integrality gap), otherwise ``FEASIBLE``.

Inside a portfolio this arm runs first: its incumbent is donated as a
warm-start cutoff to the exact arms (see
:class:`~repro.batch.portfolio.PortfolioSolver`), which prune against it
from the root node on.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

import numpy as np

from .bnb_backend import _LpRelaxation
from .greedy_rounding import lp_rounding_warm_start
from .model import Model, ObjectiveSense
from .result import Incumbent, SolveResult, SolveStatus

_TOL = 1e-6


@dataclass(frozen=True)
class LpRoundOptions:
    """Budget and determinism knobs for the rounding search."""

    time_limit: float | None = 5.0  # wall cap on the whole round() pipeline
    seed: int = 0  # rng seed for ruin-and-recreate (reproducible)


class LpRoundBackend:
    """LP-relaxation rounding as a :class:`SolverBackend`."""

    name = "lp_round"

    def __init__(self, options: LpRoundOptions | None = None) -> None:
        self.options = options or LpRoundOptions()

    def solve(
        self,
        model: Model,
        warm_start: dict[str, float] | np.ndarray | None = None,
        keep_values: bool = True,
    ) -> SolveResult:
        start = time.perf_counter()
        deadline = (
            start + self.options.time_limit
            if self.options.time_limit is not None
            else None
        )
        form = model.lower()
        relax = _LpRelaxation(form)
        lp_status, lp_obj, lp_x, _nit = relax.solve(form.var_lb, form.var_ub)
        bound = float(lp_obj) if lp_status == "optimal" else None
        if lp_status == "infeasible":
            return SolveResult(
                status=SolveStatus.INFEASIBLE,
                backend=self.name,
                wall_time=time.perf_counter() - start,
                phases=(("lp", time.perf_counter() - start),),
            )
        lp_wall = time.perf_counter() - start

        warm_vec = model.dense_values(warm_start) if warm_start is not None else None

        vec = None
        guide = getattr(model, "rounding_guide", None)
        if guide is not None:
            rng = random.Random(self.options.seed)
            vec = guide.round(
                lp_x if lp_status == "optimal" else None, warm_vec, deadline, rng
            )
            if vec is not None and model.check_feasible(vec):
                vec = None  # guide bug: never report an infeasible incumbent
        if vec is None:
            values = lp_rounding_warm_start(model)
            if values is not None:
                candidate = model.dense_values(values)
                if not model.check_feasible(candidate):
                    vec = candidate
        if vec is None and warm_vec is not None and not model.check_feasible(warm_vec):
            vec = warm_vec

        wall = time.perf_counter() - start
        phases = (("lp", lp_wall), ("round", wall - lp_wall))
        if vec is None:
            return SolveResult(
                status=SolveStatus.NO_SOLUTION,
                bound=bound,
                backend=self.name,
                wall_time=wall,
                phases=phases,
            )
        objective = model.objective_of(vec)
        closed = bound is not None and (
            objective <= bound + _TOL
            if model.objective_sense is ObjectiveSense.MINIMIZE
            else objective >= bound - _TOL
        )
        values = model.values_dict(vec) if keep_values else None
        return SolveResult(
            status=SolveStatus.OPTIMAL if closed else SolveStatus.FEASIBLE,
            objective=objective,
            values=values,
            x=vec,
            bound=bound,
            wall_time=wall,
            incumbents=[Incumbent(objective, 0.0, wall, values)],
            backend=self.name,
            phases=phases,
        )
