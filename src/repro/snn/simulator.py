"""Discrete-time leaky-integrate-and-fire SNN simulator.

This is the simulation substrate the paper added to the TENNLab framework:
it executes a :class:`~repro.snn.network.Network` over discrete timesteps,
honouring synaptic delays, and records per-neuron spike counts — the
profile data ``W[i]`` consumed by the PGO formulation (§IV-D) and the spike
streams consumed by the multi-crossbar processor model
(:mod:`repro.mca.processor`).

Dynamics per timestep (TENNLab RISP-style):

1. membrane potentials decay by each neuron's ``leak`` factor,
2. charges scheduled for this timestep (delayed synaptic deliveries and
   external injections) are accumulated,
3. every neuron at or above threshold fires: the spike is recorded,
   outgoing charges are scheduled at ``t + delay``, and the potential
   resets to zero.

Two engines implement these dynamics behind one API: the default
``"vector"`` engine (:mod:`repro.snn.engine`) runs them as dense NumPy
array operations, and the scalar ``"reference"`` engine keeps the original
dict-walking loop as the executable specification.  Select per simulator
via ``Simulator(net, engine=...)`` or globally via ``$REPRO_SIM_ENGINE``;
both produce identical spike rasters (enforced by the property suite).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

import numpy as np

from .engine import CompiledNetwork, resolve_engine, run_compiled
from .network import Network


class SimulationResult:
    """Outcome of one simulator run.

    ``spikes`` is the raster as ``(timestep, neuron_id)`` pairs in firing
    order; ``spike_counts`` aggregates them per neuron (every neuron id
    appears, silent neurons with count 0).

    The vector engine hands the raster over as arrays; the tuple list is
    materialized only when ``spikes`` is first accessed, and per-neuron
    queries go through a lazily built neuron -> firing-times index.  Do
    not mutate ``spikes`` after the first per-neuron query.
    """

    def __init__(
        self,
        duration: int,
        spikes: list[tuple[int, int]] | None = None,
        spike_counts: dict[int, int] | None = None,
        final_potentials: dict[int, float] | None = None,
    ) -> None:
        self.duration = duration
        self.spike_counts = spike_counts if spike_counts is not None else {}
        self.final_potentials = (
            final_potentials if final_potentials is not None else {}
        )
        self._spikes = spikes if spikes is not None else []
        self._raster: tuple[np.ndarray, np.ndarray] | None = None
        self._neuron_index: dict[int, list[int]] | None = None

    @classmethod
    def from_raster(
        cls,
        duration: int,
        times: np.ndarray,
        neuron_ids: np.ndarray,
        spike_counts: dict[int, int],
        final_potentials: dict[int, float],
    ) -> "SimulationResult":
        """Build from the vector engine's raw arrays (tuple list deferred)."""
        result = cls(
            duration,
            spike_counts=spike_counts,
            final_potentials=final_potentials,
        )
        result._raster = (times, neuron_ids)
        return result

    @property
    def spikes(self) -> list[tuple[int, int]]:
        if self._raster is not None:
            times, ids = self._raster
            self._spikes = list(zip(times.tolist(), ids.tolist()))
            self._raster = None
        return self._spikes

    def __repr__(self) -> str:
        return (
            f"SimulationResult(duration={self.duration}, "
            f"total_spikes={self.total_spikes})"
        )

    def __eq__(self, other: object) -> bool:
        """Value equality on the observable record (as the former
        dataclass had): duration, raster, counts, final potentials."""
        if not isinstance(other, SimulationResult):
            return NotImplemented
        return (
            self.duration == other.duration
            and self.spikes == other.spikes
            and self.spike_counts == other.spike_counts
            and self.final_potentials == other.final_potentials
        )

    @property
    def total_spikes(self) -> int:
        if self._raster is not None:
            return int(self._raster[0].size)
        return len(self._spikes)

    def _index(self) -> dict[int, list[int]]:
        if self._neuron_index is None:
            index: dict[int, list[int]] = {}
            if self._raster is not None:
                times, ids = self._raster
                for t, nid in zip(times.tolist(), ids.tolist()):
                    index.setdefault(nid, []).append(t)
            else:
                for t, nid in self._spikes:
                    index.setdefault(nid, []).append(t)
            self._neuron_index = index
        return self._neuron_index

    def spikes_of(self, neuron_id: int) -> list[int]:
        """Firing times of one neuron (O(1) after the first query)."""
        return list(self._index().get(neuron_id, ()))

    def spike_train(self, neuron_id: int) -> list[int]:
        """0/1 train of length ``duration`` for one neuron."""
        train = [0] * self.duration
        for t in self._index().get(neuron_id, ()):
            train[t] = 1
        return train


class Simulator:
    """Executes a network over discrete timesteps.

    ``engine`` selects the implementation: ``"vector"`` (NumPy kernel,
    the default), ``"reference"`` (scalar specification loop), or ``None``
    to defer to ``$REPRO_SIM_ENGINE`` (falling back to ``"vector"``).
    """

    def __init__(self, network: Network, engine: str | None = None) -> None:
        self.network = network
        self.engine = resolve_engine(engine)
        if self.engine == "vector":
            self._compiled = CompiledNetwork.from_network(network)
        else:
            # Cache outgoing synapse tuples for the scalar hot loop.
            self._out_syn: dict[int, list[tuple[int, float, int]]] = {
                nid: [
                    (post, network.synapse(nid, post).weight,
                     network.synapse(nid, post).delay)
                    for post in sorted(network.successors(nid))
                ]
                for nid in network.neuron_ids()
            }

    def run(
        self,
        duration: int,
        input_spikes: Mapping[int, Iterable[int]] | None = None,
        input_charges: Iterable[tuple[int, int, float]] | None = None,
    ) -> SimulationResult:
        """Simulate for ``duration`` timesteps.

        Parameters
        ----------
        input_spikes:
            neuron id -> timesteps at which an external spike arrives; each
            arrival injects exactly the neuron's threshold, forcing a fire
            (the usual TENNLab input convention).
        input_charges:
            arbitrary ``(neuron_id, timestep, amount)`` injections for
            sub-threshold stimulation.
        """
        if self.engine == "vector":
            return self._run_vector(duration, input_spikes, input_charges)
        return self._run_reference(duration, input_spikes, input_charges)

    # ------------------------------------------------------------------
    # vector engine (default)
    # ------------------------------------------------------------------
    def _run_vector(
        self,
        duration: int,
        input_spikes: Mapping[int, Iterable[int]] | None,
        input_charges: Iterable[tuple[int, int, float]] | None,
    ) -> SimulationResult:
        times, ids, counts, potentials = run_compiled(
            self._compiled, duration, input_spikes, input_charges
        )
        neuron_ids = self._compiled.ids.tolist()
        return SimulationResult.from_raster(
            duration,
            times,
            ids,
            spike_counts=dict(zip(neuron_ids, counts.tolist())),
            final_potentials=dict(zip(neuron_ids, potentials.tolist())),
        )

    # ------------------------------------------------------------------
    # reference engine (scalar specification)
    # ------------------------------------------------------------------
    def _run_reference(
        self,
        duration: int,
        input_spikes: Mapping[int, Iterable[int]] | None,
        input_charges: Iterable[tuple[int, int, float]] | None,
    ) -> SimulationResult:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        net = self.network
        pending: dict[int, dict[int, float]] = defaultdict(dict)  # t -> {nid: charge}

        def inject(nid: int, t: int, amount: float) -> None:
            if not net.has_neuron(nid):
                raise KeyError(f"input targets unknown neuron {nid}")
            if 0 <= t < duration:
                slot = pending[t]
                slot[nid] = slot.get(nid, 0.0) + amount

        if input_spikes:
            for nid, times in input_spikes.items():
                thr = net.neuron(nid).threshold
                for t in times:
                    inject(nid, t, thr)
        if input_charges:
            for nid, t, amount in input_charges:
                inject(nid, t, amount)

        potentials = {nid: 0.0 for nid in net.neuron_ids()}
        leaks = {n.id: n.leak for n in net.neurons()}
        thresholds = {n.id: n.threshold for n in net.neurons()}
        result = SimulationResult(duration=duration)
        counts = {nid: 0 for nid in net.neuron_ids()}

        for t in range(duration):
            for nid, leak in leaks.items():
                if leak != 1.0:
                    potentials[nid] *= leak
            for nid, charge in pending.pop(t, {}).items():
                potentials[nid] += charge
            # Deterministic firing order by neuron id.
            fired = [
                nid for nid in potentials
                if potentials[nid] >= thresholds[nid] - 1e-12
            ]
            for nid in sorted(fired):
                result.spikes.append((t, nid))
                counts[nid] += 1
                potentials[nid] = 0.0
                for post, weight, delay in self._out_syn[nid]:
                    target_t = t + delay
                    if target_t < duration:
                        slot = pending[target_t]
                        slot[post] = slot.get(post, 0.0) + weight

        result.spike_counts = counts
        result.final_potentials = dict(potentials)
        return result


def spike_profile(
    network: Network,
    samples: Iterable[Mapping[int, Iterable[int]]],
    duration: int,
    engine: str | None = None,
) -> dict[int, int]:
    """Aggregate per-neuron spike counts over many input samples.

    This is the PGO profile ``W[i]`` of §IV-D: the number of times each
    neuron fired across the profiling dataset.
    """
    sim = Simulator(network, engine=engine)
    totals = {nid: 0 for nid in network.neuron_ids()}
    for sample in samples:
        result = sim.run(duration, input_spikes=sample)
        for nid, count in result.spike_counts.items():
            totals[nid] += count
    return totals
