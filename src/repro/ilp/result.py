"""Solver result containers shared by all ILP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped at a limit with an incumbent in hand
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NO_SOLUTION = "no_solution"  # stopped at a limit with no incumbent

    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass(frozen=True)
class Incumbent:
    """One improving solution found during the search.

    ``det_time`` is the backend's deterministic work measure at the moment
    the incumbent was found (see :mod:`repro.ilp.dettime`); ``wall_time``
    is elapsed seconds.  ``values`` maps variable *name* to value and may be
    ``None`` when the backend was asked not to retain full assignments.
    """

    objective: float
    det_time: float
    wall_time: float
    values: Mapping[str, float] | None = None


@dataclass
class SolveResult:
    """Result of solving a :class:`repro.ilp.model.Model`.

    Attributes
    ----------
    status:
        Final :class:`SolveStatus`.
    objective:
        Objective value of the best solution (``None`` without a solution).
    values:
        Best assignment, variable name -> value (``None`` without one).
    x:
        Best assignment as a dense index-ordered vector (``None`` without
        one).  The preferred form for index-based consumers (mapping
        extraction, warm-start chaining); ``values`` is derived from it.
    bound:
        Best proven dual bound on the objective, if known.
    det_time:
        Total deterministic work spent (backend-specific units).
    wall_time:
        Total elapsed wall-clock seconds.
    incumbents:
        Improving-solution trace in discovery order.
    node_count:
        Branch-and-bound nodes processed (0 for single-shot backends).
    backend:
        Name of the backend that produced the result.
    phases:
        Per-phase wall-time breakdown as ``(name, seconds)`` pairs in
        execution order — e.g. ``(("build", ...), ("lower", ...),
        ("solve", ...))``.  Backends record their own phases; wrapping
        layers (pipeline build, portfolio lower) prepend theirs, so the
        tuple reads outermost-first.  Plain data: it crosses process
        pools and lands in solve summaries / phase histograms as-is.
    """

    status: SolveStatus
    objective: float | None = None
    values: dict[str, float] | None = None
    x: np.ndarray | None = None
    bound: float | None = None
    det_time: float = 0.0
    wall_time: float = 0.0
    incumbents: list[Incumbent] = field(default_factory=list)
    node_count: int = 0
    backend: str = ""
    phases: tuple[tuple[str, float], ...] = ()

    def value(self, name: str, default: float = 0.0) -> float:
        """Value of variable ``name`` in the best solution."""
        if self.values is None:
            raise ValueError("solve produced no solution to read values from")
        return self.values.get(name, default)

    def gap(self) -> float | None:
        """Relative optimality gap, if both objective and bound are known."""
        if self.objective is None or self.bound is None:
            return None
        denom = max(abs(self.objective), 1e-9)
        return abs(self.objective - self.bound) / denom

    def __repr__(self) -> str:
        return (
            f"SolveResult(status={self.status.value}, objective={self.objective}, "
            f"bound={self.bound}, nodes={self.node_count}, "
            f"det_time={self.det_time:.1f}, wall_time={self.wall_time:.3f}s, "
            f"backend={self.backend!r})"
        )
