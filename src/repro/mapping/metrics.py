"""Mapping quality metrics and comparisons.

Aggregates every paper metric for one mapping into a single record and
provides the relative-improvement arithmetic used throughout Section V
("improvement is relative to ...").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping as MappingT

from .solution import Mapping


@dataclass(frozen=True)
class MappingMetrics:
    """All paper metrics of one mapping (packets only when profiled)."""

    area: float
    memristors: int
    enabled_crossbars: int
    total_routes: int
    local_routes: int
    global_routes: int
    local_packets: int | None = None
    global_packets: int | None = None

    @property
    def total_packets(self) -> int | None:
        if self.local_packets is None or self.global_packets is None:
            return None
        return self.local_packets + self.global_packets


def evaluate_mapping(
    mapping: Mapping, spike_counts: MappingT[int, int] | None = None
) -> MappingMetrics:
    """Compute the full metric record for a mapping."""
    local_packets = global_packets = None
    if spike_counts is not None:
        local_packets, global_packets = mapping.packet_count(spike_counts)
    return MappingMetrics(
        area=mapping.area(),
        memristors=mapping.memristor_count(),
        enabled_crossbars=len(mapping.enabled_slots()),
        total_routes=mapping.total_routes(),
        local_routes=mapping.local_routes(),
        global_routes=mapping.global_routes(),
        local_packets=local_packets,
        global_packets=global_packets,
    )


def improvement_pct(baseline: float, improved: float) -> float:
    """Relative reduction in percent: 100 * (baseline - improved) / baseline.

    Positive = ``improved`` is better (smaller).  A zero baseline with a
    zero improved value is 0% (no change); a zero baseline otherwise is
    undefined and raises.
    """
    if baseline == 0:
        if improved == 0:
            return 0.0
        raise ZeroDivisionError("improvement relative to a zero baseline")
    return 100.0 * (baseline - improved) / baseline
