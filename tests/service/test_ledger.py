"""Lease state machine + journal replay tests for the fleet ledger."""

from __future__ import annotations

import json
import multiprocessing as mp

import pytest

from repro.service.ledger import (
    LEASE_DEAD_LETTER,
    LEASE_FINISHED,
    LEASE_LEASED,
    LEASE_PENDING,
    LEDGER_FORMAT,
    JobLedger,
)

pytestmark = pytest.mark.service

SPEC = {"format": 1, "scenarios": [], "tier": "ilp", "time_limit": 5.0}


class TestLeaseStateMachine:
    def test_claim_is_fifo_and_leases_with_ttl(self):
        ledger = JobLedger(lease_ttl=10.0)
        ledger.enqueue("job-a", SPEC)
        ledger.enqueue("job-b", SPEC)
        first = ledger.claim("w0", now=100.0)
        assert first.id == "job-a"
        assert first.state == LEASE_LEASED
        assert first.worker == "w0"
        assert first.attempts == 1
        assert first.lease_expires == 110.0
        assert ledger.claim("w1", now=100.0).id == "job-b"
        assert ledger.claim("w2", now=100.0) is None  # drained

    def test_enqueue_is_idempotent(self):
        ledger = JobLedger()
        job = ledger.enqueue("job-a", SPEC)
        assert ledger.enqueue("job-a", SPEC) is job

    def test_heartbeat_renews_only_active_leases(self):
        ledger = JobLedger(lease_ttl=10.0)
        ledger.enqueue("job-a", SPEC)
        ledger.claim("w0", now=100.0)
        assert ledger.heartbeat("job-a", now=105.0)
        assert ledger.get("job-a").lease_expires == 115.0
        ledger.finish("job-a", "done")
        assert not ledger.heartbeat("job-a", now=106.0)  # stale worker
        assert not ledger.heartbeat("nope", now=106.0)

    def test_expired_reports_lapsed_leases_once(self):
        ledger = JobLedger(lease_ttl=10.0)
        ledger.enqueue("job-a", SPEC)
        ledger.claim("w0", now=100.0)
        assert ledger.expired(now=105.0) == []  # still alive
        lapsed = ledger.expired(now=111.0)
        assert [job.id for job in lapsed] == ["job-a"]
        assert ledger.expired(now=112.0) == []  # not double-counted
        assert ledger.counts()["leases_expired"] == 1

    def test_fail_attempt_backs_off_exponentially(self):
        ledger = JobLedger(max_attempts=5, backoff_base=1.0, backoff_cap=30.0)
        ledger.enqueue("job-a", SPEC)
        gates = []
        for _ in range(4):
            ledger.claim("w0", now=1000.0)
            assert ledger.fail_attempt("job-a", "boom", now=1000.0) == LEASE_PENDING
            gates.append(ledger.get("job-a").not_before - 1000.0)
            ledger.get("job-a").not_before = 0.0  # reopen the gate for the test
        assert gates == [1.0, 2.0, 4.0, 8.0]

    def test_backoff_gate_blocks_claims_until_not_before(self):
        ledger = JobLedger(backoff_base=5.0)
        ledger.enqueue("job-a", SPEC)
        ledger.claim("w0", now=100.0)
        ledger.fail_attempt("job-a", "boom", now=100.0)
        assert ledger.claim("w0", now=102.0) is None  # inside backoff
        assert ledger.claim("w0", now=106.0).id == "job-a"

    def test_dead_letter_after_max_attempts(self):
        ledger = JobLedger(max_attempts=2, backoff_base=0.0)
        ledger.enqueue("job-a", SPEC)
        ledger.claim("w0", now=100.0)
        assert ledger.fail_attempt("job-a", "boom 1", now=100.0) == LEASE_PENDING
        ledger.claim("w0", now=200.0)
        assert ledger.fail_attempt("job-a", "boom 2", now=200.0) == LEASE_DEAD_LETTER
        job = ledger.get("job-a")
        assert job.state == LEASE_DEAD_LETTER
        assert job.last_error == "boom 2"
        assert [j.id for j in ledger.dead_letters()] == ["job-a"]
        assert ledger.claim("w0", now=300.0) is None  # never retried again
        assert ledger.fail_attempt("job-a", "late", now=300.0) is None  # terminal
        counts = ledger.counts()
        assert counts["dead_letters"] == 1
        assert counts["by_state"] == {LEASE_DEAD_LETTER: 1}

    def test_requeue_for_restart_refunds_the_attempt(self):
        ledger = JobLedger(max_attempts=1)
        ledger.enqueue("job-a", SPEC)
        ledger.claim("w0", now=100.0)
        assert ledger.requeue_for_restart("job-a", "shutdown")
        job = ledger.get("job-a")
        assert job.state == LEASE_PENDING
        assert job.attempts == 0  # the drain did not burn the only attempt
        # The refunded attempt is immediately claimable and still has its
        # full budget: a real failure now dead-letters (max_attempts=1).
        ledger.claim("w0", now=101.0)
        assert ledger.fail_attempt("job-a", "boom", now=101.0) == LEASE_DEAD_LETTER

    def test_depth_counts_unfinished_only(self):
        ledger = JobLedger()
        ledger.enqueue("job-a", SPEC)
        ledger.enqueue("job-b", SPEC)
        ledger.claim("w0")
        assert ledger.depth() == 2
        ledger.finish("job-a", "done")
        assert ledger.depth() == 1
        assert ledger.get("job-a").state == LEASE_FINISHED
        assert ledger.get("job-a").outcome == "done"


class TestJournalReplay:
    def test_restart_replays_pending_and_finished(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with JobLedger(path) as ledger:
            ledger.enqueue("job-a", SPEC)
            ledger.enqueue("job-b", SPEC)
            ledger.claim("w0", now=100.0)
            ledger.finish("job-a", "done")
        replayed = JobLedger(path)
        assert replayed.get("job-a").state == LEASE_FINISHED
        assert replayed.get("job-a").outcome == "done"
        assert replayed.get("job-b").state == LEASE_PENDING
        assert replayed.get("job-b").spec == SPEC
        assert replayed.replay_skipped == 0
        replayed.close()

    def test_leased_jobs_requeue_on_restart_without_burning_budget(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with JobLedger(path, max_attempts=1) as ledger:
            ledger.enqueue("job-a", SPEC)
            ledger.claim("w0", now=100.0)
        replayed = JobLedger(path, max_attempts=1)
        job = replayed.get("job-a")
        assert job.state == LEASE_PENDING
        assert job.attempts == 0  # refunded: the process died, not the job
        assert replayed.claim("w1") is not None  # immediately claimable
        replayed.close()
        # A third restart replays w1's claim and requeues it in turn —
        # restarts are idempotent, the budget refund never goes negative.
        third = JobLedger(path, max_attempts=1)
        assert third.get("job-a").state == LEASE_PENDING
        assert third.get("job-a").attempts == 0
        third.close()

    def test_dead_letters_survive_restart(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with JobLedger(path, max_attempts=1) as ledger:
            ledger.enqueue("job-a", SPEC)
            ledger.claim("w0", now=100.0)
            ledger.fail_attempt("job-a", "boom", now=100.0)
        replayed = JobLedger(path)
        job = replayed.get("job-a")
        assert job.state == LEASE_DEAD_LETTER
        assert job.last_error == "boom"
        replayed.close()

    def test_backoff_gate_survives_restart(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with JobLedger(path, max_attempts=3, backoff_base=1000.0) as ledger:
            ledger.enqueue("job-a", SPEC)
            ledger.claim("w0")
            ledger.fail_attempt("job-a", "boom")
        replayed = JobLedger(path)
        job = replayed.get("job-a")
        assert job.state == LEASE_PENDING
        assert job.attempts == 1  # a *failed* attempt is not refunded
        assert replayed.claim("w0") is None  # still backing off
        replayed.close()

    def test_torn_and_stale_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with JobLedger(path) as ledger:
            ledger.enqueue("job-a", SPEC)
        with path.open("a") as fh:
            fh.write(json.dumps({"format": 999, "event": "enqueued"}) + "\n")
            fh.write(json.dumps({"format": LEDGER_FORMAT, "job": "ghost",
                                 "event": "leased"}) + "\n")
            fh.write('{"torn')  # no newline: crashed writer
        replayed = JobLedger(path)
        assert replayed.get("job-a").state == LEASE_PENDING
        assert replayed.replay_skipped == 2  # stale format + orphan lease
        replayed.close()

    def test_heartbeats_are_journaled_lazily_but_replayed(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with JobLedger(path, lease_ttl=10.0) as ledger:
            ledger.enqueue("job-a", SPEC)
            ledger.claim("w0", now=100.0)
            ledger.heartbeat("job-a", now=500.0)
        # Replay sees the renewed expiry before deciding the job was
        # leased (then requeues it, because this process owns no worker).
        replayed = JobLedger(path)
        assert replayed.get("job-a").state == LEASE_PENDING
        replayed.close()


def _ledger_hammer(path: str, worker: int, jobs: int) -> None:
    ledger = JobLedger(path)
    for i in range(jobs):
        job_id = f"job-{worker:02d}-{i:03d}"
        ledger.enqueue(job_id, dict(SPEC, meta_pad="x" * 256))
        claimed = ledger.claim(f"w{worker}")
        if claimed is not None:
            ledger.heartbeat(claimed.id)
            ledger.finish(claimed.id, "done")
    ledger.close()


class TestMultiprocessHammer:
    def test_zero_torn_or_duplicate_lines(self, tmp_path):
        """N processes share one journal: every line whole, no dup enqueues."""
        path = tmp_path / "ledger.jsonl"
        writers, jobs = 4, 20
        ctx = mp.get_context("spawn")
        procs = [
            ctx.Process(target=_ledger_hammer, args=(str(path), w, jobs))
            for w in range(writers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        enqueued = []
        for line in path.read_text().splitlines():
            record = json.loads(line)  # every line parses — zero torn
            assert record["format"] == LEDGER_FORMAT
            if record["event"] == "enqueued":
                enqueued.append(record["job"])
        assert len(enqueued) == writers * jobs
        assert len(set(enqueued)) == len(enqueued)  # zero duplicates
