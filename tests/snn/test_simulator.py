"""Tests for the discrete-time LIF simulator."""

import pytest

from repro.snn.network import Network
from repro.snn.simulator import Simulator, spike_profile


def chain(n=3, weight=1.0, delay=1, threshold=1.0, leak=1.0):
    net = Network("chain")
    for i in range(n):
        net.add_neuron(i, threshold=threshold, leak=leak, is_input=(i == 0))
    for i in range(n - 1):
        net.add_synapse(i, i + 1, weight=weight, delay=delay)
    return net


class TestBasicDynamics:
    def test_input_spike_forces_fire(self):
        net = chain(2)
        result = Simulator(net).run(5, input_spikes={0: [1]})
        assert (1, 0) in result.spikes

    def test_propagation_with_unit_delay(self):
        net = chain(3)
        result = Simulator(net).run(5, input_spikes={0: [0]})
        assert result.spikes_of(0) == [0]
        assert result.spikes_of(1) == [1]
        assert result.spikes_of(2) == [2]

    def test_longer_delay(self):
        net = chain(2, delay=3)
        result = Simulator(net).run(6, input_spikes={0: [0]})
        assert result.spikes_of(1) == [3]

    def test_subthreshold_weight_accumulates(self):
        net = chain(2, weight=0.5)
        # Two spikes of 0 deliver 0.5 + 0.5 -> neuron 1 fires on the second.
        result = Simulator(net).run(6, input_spikes={0: [0, 1]})
        assert result.spikes_of(1) == [2]

    def test_potential_resets_after_fire(self):
        net = chain(2, weight=1.0)
        result = Simulator(net).run(8, input_spikes={0: [0, 3]})
        # Each source spike causes exactly one downstream spike.
        assert result.spikes_of(1) == [1, 4]

    def test_leak_decays_charge(self):
        net = chain(2, weight=0.6, leak=0.5)
        # 0.6 then decay to 0.3, + 0.6 = 0.9 < 1: no fire with a gap.
        result = Simulator(net).run(8, input_spikes={0: [0, 2]})
        assert result.spikes_of(1) == []
        # Back-to-back spikes: 0.6*0.5 + 0.6 = 0.9 still < 1 -> never fires.
        result2 = Simulator(net).run(8, input_spikes={0: [0, 1]})
        assert result2.spikes_of(1) == []

    def test_no_leak_integrates_forever(self):
        net = chain(2, weight=0.4, leak=1.0)
        result = Simulator(net).run(10, input_spikes={0: [0, 2, 4]})
        assert result.spikes_of(1) == [5]

    def test_inhibitory_weight_suppresses(self):
        net = Network()
        net.add_neuron(0, is_input=True)
        net.add_neuron(1, is_input=True)
        net.add_neuron(2)
        net.add_synapse(0, 2, weight=1.0)
        net.add_synapse(1, 2, weight=-1.0)
        result = Simulator(net).run(4, input_spikes={0: [0], 1: [0]})
        assert result.spikes_of(2) == []

    def test_input_charges_subthreshold(self):
        net = chain(1)
        result = Simulator(net).run(
            4, input_charges=[(0, 0, 0.6), (0, 1, 0.6)]
        )
        assert result.spikes_of(0) == [1]


class TestRunSemantics:
    def test_spikes_outside_duration_ignored(self):
        net = chain(2)
        result = Simulator(net).run(2, input_spikes={0: [0, 5]})
        assert result.spikes_of(0) == [0]

    def test_unknown_input_neuron_raises(self):
        net = chain(2)
        with pytest.raises(KeyError):
            Simulator(net).run(2, input_spikes={99: [0]})

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Simulator(chain(2)).run(-1)

    def test_zero_duration(self):
        result = Simulator(chain(2)).run(0, input_spikes={0: [0]})
        assert result.total_spikes == 0

    def test_determinism(self):
        net = chain(4, weight=0.7)
        r1 = Simulator(net).run(20, input_spikes={0: [0, 3, 7, 11]})
        r2 = Simulator(net).run(20, input_spikes={0: [0, 3, 7, 11]})
        assert r1.spikes == r2.spikes

    def test_spike_counts_cover_all_neurons(self):
        net = chain(3)
        result = Simulator(net).run(5, input_spikes={0: [0]})
        assert set(result.spike_counts) == {0, 1, 2}
        assert result.spike_counts[2] == 1

    def test_spike_train(self):
        net = chain(2)
        result = Simulator(net).run(4, input_spikes={0: [0, 2]})
        assert result.spike_train(0) == [1, 0, 1, 0]


class TestSpikeProfile:
    def test_aggregates_over_samples(self):
        net = chain(3)
        samples = [{0: [0]}, {0: [0, 1]}]
        totals = spike_profile(net, samples, duration=6)
        assert totals[0] == 3
        assert totals[1] == 3
        assert totals[2] == 3

    def test_silent_neurons_reported_as_zero(self):
        net = chain(3)
        totals = spike_profile(net, [{}], duration=4)
        assert totals == {0: 0, 1: 0, 2: 0}
