"""Fig. 5 reproduction: SNU route optimization, homogeneous target.

Takes each network's area-optimal homogeneous solution, freezes its
enabled-crossbar set, and minimizes global routes (objective 11).  The
paper observes 9.2-26.9% route reduction with no area increase;
improvement is relative to the most-area-optimal solution the solver
found.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapping.metrics import improvement_pct
from ..mapping.problem import MappingProblem
from .common import ExhibitResult, area_optimize, homo_problem, snu_optimize
from .networks import NETWORK_NAMES, paper_network
from .runner import ExperimentConfig, format_table


@dataclass(frozen=True)
class SnuRow:
    """Route counts before/after SNU over a frozen crossbar set."""

    network: str
    area: float
    routes_before: int
    routes_after: int
    det_time: float

    @property
    def improvement(self) -> float:
        if self.routes_before == 0:
            return 0.0
        return improvement_pct(self.routes_before, self.routes_after)


def snu_over_area_optimal(
    name: str, problem: MappingProblem, config: ExperimentConfig
) -> SnuRow:
    """Shared Fig. 5 / Fig. 6 protocol for one (network, target) pair."""
    area_opt = area_optimize(problem, config)
    snu_opt = snu_optimize(problem, area_opt.mapping, config)
    assert snu_opt.mapping.area() <= area_opt.mapping.area() + 1e-9
    return SnuRow(
        network=name,
        area=area_opt.mapping.area(),
        routes_before=area_opt.mapping.global_routes(),
        routes_after=snu_opt.mapping.global_routes(),
        det_time=snu_opt.det_time,
    )


def run_fig5(config: ExperimentConfig) -> ExhibitResult:
    rows: list[SnuRow] = []
    for name in NETWORK_NAMES:
        network = paper_network(name, scale=config.scale)
        rows.append(snu_over_area_optimal(name, homo_problem(network, config), config))
    table_rows = [
        (
            r.network,
            r.area,
            r.routes_before,
            r.routes_after,
            round(r.improvement, 1),
        )
        for r in rows
    ]
    headers = ["Net", "Area", "Global routes (area-opt)", "Global routes (SNU)", "Gain %"]
    note = "paper shape: 9.2-26.9% route reduction at unchanged area (homogeneous)"
    return ExhibitResult(
        report=format_table(headers, table_rows) + "\n" + note,
        rows=table_rows,
    )
