"""Concurrent-writer and crash-tolerance regression tests for RunStore.

The regression of record: the store used to re-open the JSONL file per
append, so a crashed writer's torn final line silently merged with the
next writer's entry (losing both).  The store now keeps one locked
append handle and heals torn tails before every append.
"""

from __future__ import annotations

import json
import multiprocessing as mp

import pytest

from repro.dse.store import TIER_ILP, RunEntry, RunStore

pytestmark = pytest.mark.dse

OBJECTIVES = {"area": 1.0, "energy": 2.0, "latency": 3.0}


def _entry(fingerprint: str, **kwargs) -> RunEntry:
    return RunEntry(
        fingerprint=fingerprint,
        tier=kwargs.pop("tier", TIER_ILP),
        scenario={"kind": "scenario"},
        status=kwargs.pop("status", "ok"),
        objectives=kwargs.pop("objectives", dict(OBJECTIVES)),
        **kwargs,
    )


def _hammer(path: str, writer: int, appends: int) -> None:
    """One writer process: many appends through a single store handle."""
    with RunStore(path) as store:
        for i in range(appends):
            # Long meta padding makes each line span multiple buffered
            # writes, so unlocked writers would interleave visibly.
            store.record(
                _entry(f"w{writer}-{i}", meta={"writer": writer, "pad": "x" * 512})
            )


class TestSingleHandle:
    def test_record_reuses_one_append_handle(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.record(_entry("a"))
        first = store._handle
        store.record(_entry("b"))
        assert store._handle is first
        assert first is not None and not first.closed

    def test_close_releases_and_reopens_on_demand(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.record(_entry("a"))
        store.close()
        assert store._handle is None
        store.record(_entry("b"))  # reopens transparently
        assert len(RunStore(path)) == 2

    def test_context_manager_closes(self, tmp_path):
        with RunStore(tmp_path / "runs.jsonl") as store:
            store.record(_entry("a"))
            handle = store._handle
        assert handle is not None and handle.closed

    def test_memory_store_records_without_a_handle(self):
        store = RunStore()
        store.record(_entry("a"))
        assert store._handle is None


class TestCrashTornTail:
    def test_append_after_crashed_writer_heals_the_torn_line(self, tmp_path):
        """A live writer must not merge its entry into a torn tail."""
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.record(_entry("before"))
        # A sibling process crashed mid-append: its partial line has no
        # terminating newline.
        with path.open("ab") as raw:
            raw.write(b'{"format": 1, "fingerprint": "torn-victi')
        store.record(_entry("after"))

        loaded = RunStore(path)
        assert loaded.get("before") is not None
        assert loaded.get("after") is not None  # would be lost pre-fix
        assert loaded.skipped_lines == 1  # exactly the torn line
        # Every surviving line is intact JSON.
        lines = [ln for ln in path.read_text().splitlines() if ln]
        parsed = 0
        for line in lines:
            try:
                json.loads(line)
                parsed += 1
            except json.JSONDecodeError:
                pass
        assert parsed == len(lines) - 1

    def test_torn_tail_of_an_empty_store_is_healed_too(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_bytes(b'{"torn')
        store = RunStore(path)
        store.record(_entry("only"))
        loaded = RunStore(path)
        assert loaded.get("only") is not None
        assert loaded.skipped_lines == 1


class TestConcurrentWriters:
    def test_parallel_processes_share_one_file_without_torn_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        writers, appends = 4, 25
        ctx = mp.get_context("spawn")
        procs = [
            ctx.Process(target=_hammer, args=(str(path), w, appends))
            for w in range(writers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        loaded = RunStore(path)
        assert loaded.skipped_lines == 0
        assert len(loaded) == writers * appends
        for line in path.read_text().splitlines():
            json.loads(line)  # every line parses — no interleaved writes

    def test_reload_picks_up_sibling_appends(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        mine = RunStore(path)
        mine.record(_entry("mine"))
        sibling = RunStore(path)
        sibling.record(_entry("theirs"))
        assert mine.get("theirs") is None  # not yet visible
        assert mine.reload() == 2
        assert mine.get("theirs") is not None
        assert mine.get("mine") is not None  # own entries survive reload
