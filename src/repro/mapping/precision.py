"""Weight-precision-aware area mapping (bit-slicing extension).

The paper notes SpikeHard's axon miscounting means "neither inter-crossbar
connections nor network weights can be modeled with reasonable accuracy"
(§III) — implying the axon-sharing framework *can* model weights.  This
module realizes that: devices store ``cell_bits`` of conductance
resolution, so a synapse quantized to ``weight_bits`` must be **bit-
sliced** across ``ceil(weight_bits / cell_bits)`` physical columns
(the standard ReRAM technique).

Consequences for the ILP, relative to :mod:`repro.mapping.axon_sharing`:

- constraint 4 weights each neuron by its slice count
  (``sum_i slices_i * x[i, j] <= N_j * y[j]``) — output lines are no
  longer one per neuron;
- constraints 3, 5-7 and objective 8 are unchanged (slices share the
  neuron's input word-lines, so axon accounting is untouched).

The slice count per neuron is the *maximum* slice requirement over its
incoming synapses (all of a neuron's columns are programmed to the same
resolution in practice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..ilp.model import Sense
from ..ilp.result import SolveResult
from .axon_sharing import AreaModel, FormulationOptions
from .problem import MappingProblem
from .solution import Mapping


@dataclass(frozen=True)
class PrecisionSpec:
    """Weight-resolution requirements."""

    weight_bits: int = 8  # quantization of synapse weights
    cell_bits: int = 2  # conductance bits per memristor device

    def __post_init__(self) -> None:
        if self.weight_bits < 1 or self.cell_bits < 1:
            raise ValueError("bit widths must be positive")
        if self.cell_bits > self.weight_bits:
            raise ValueError("cell_bits cannot exceed weight_bits")

    @property
    def slices(self) -> int:
        """Physical columns per logical neuron output."""
        return math.ceil(self.weight_bits / self.cell_bits)


def neuron_slices(problem: MappingProblem, spec: PrecisionSpec) -> dict[int, int]:
    """Slice requirement per neuron.

    Neurons without incoming synapses hold no weights: one column
    suffices (the output driver still needs a bit-line).
    """
    out: dict[int, int] = {}
    for i in problem.network.neuron_ids():
        out[i] = spec.slices if problem.preds(i) else 1
    return out


class PrecisionAreaModel(AreaModel):
    """Area model with bit-sliced output-capacity accounting."""

    def __init__(
        self,
        problem: MappingProblem,
        spec: PrecisionSpec,
        options: FormulationOptions | None = None,
    ) -> None:
        self.spec = spec
        self._slices = neuron_slices(problem, spec)
        super().__init__(problem, options)
        self._replace_output_capacity()
        # The mapping-aware rounding guide the base class attaches knows
        # nothing about sliced output capacity, so its "repaired" mappings
        # can violate the rows added above.  Drop it: the lp_round backend
        # then falls back to the generic (row-exact) LP fix-and-round.
        self.model.rounding_guide = None

    @property
    def slices(self) -> dict[int, int]:
        """Per-neuron bit-slice requirement this model accounts for."""
        return self._slices

    def _replace_output_capacity(self) -> None:
        """Rebuild constraint 4 with per-neuron slice weights.

        The base class already added the unweighted rows; rather than
        reach into the model to delete them (they remain valid but
        looser), we add the tighter sliced rows alongside — as one
        columnar block over the base class's x/y index layout:
        ``sum_i slices_i * x[i, j] - N_j * y[j] <= 0``.
        """
        prob = self.problem
        neurons = prob.network.neuron_ids()
        n, m = len(neurons), prob.num_slots
        slices = np.array([self._slices[i] for i in neurons], dtype=np.float64)
        outputs = np.array(
            [prob.architecture.slot(j).outputs for j in range(m)],
            dtype=np.float64,
        )
        all_j = np.arange(m, dtype=np.int64)
        self.model.add_block(
            rows=np.concatenate([np.tile(all_j, n), all_j]),
            cols=np.concatenate(
                [self._layout.x_base + np.arange(n * m, dtype=np.int64), all_j]
            ),
            coefs=np.concatenate([np.repeat(slices, m), -outputs]),
            sense=Sense.LE,
            rhs=0.0,
            num_rows=m,
            name=[f"sliced_outputs_{j}" for j in range(m)],
        )

    def extract_mapping(self, result: SolveResult) -> Mapping:
        mapping = super().extract_mapping(result)
        issues = validate_sliced(mapping, self._slices)
        if issues:
            raise AssertionError(f"sliced capacity violated: {issues[:3]}")
        return mapping


def validate_sliced(mapping: Mapping, slices: dict[int, int]) -> list[str]:
    """Check bit-sliced output capacity of a mapping."""
    violations: list[str] = []
    arch = mapping.problem.architecture
    for j in mapping.enabled_slots():
        demand = sum(slices[i] for i in mapping.neurons_on(j))
        if demand > arch.slot(j).outputs:
            violations.append(
                f"slot {j}: {demand} bit-sliced columns exceed "
                f"{arch.slot(j).outputs} output lines"
            )
    return violations


def precision_area_overhead(
    problem: MappingProblem,
    base_mapping_area: float,
    sliced_mapping_area: float,
) -> float:
    """Relative area cost of the requested precision (>= 0)."""
    if base_mapping_area <= 0:
        raise ValueError("base mapping area must be positive")
    return (sliced_mapping_area - base_mapping_area) / base_mapping_area
