"""Fig. 9 bench: PGO vs SNU packet counts on held-out data.

Shape (paper: 0.5-14.8% gain at far less solver effort): PGO's expected
packets on the *profile* never exceed SNU's (an ILP guarantee), held-out
gains are positive for most networks, and never catastrophically negative
(regular spiking transfers from the 1% profile to the 99% eval split).
"""

from bench_config import FIG9, once
from repro.experiments.fig9 import run_fig9


def test_benchmark_fig9(benchmark):
    result = once(benchmark, lambda: run_fig9(FIG9))
    gains = []
    for (net, snu_mean, _s1, pgo_mean, _s2, gain, _speedup) in result.rows:
        assert snu_mean >= 0 and pgo_mean >= 0
        # Profile-to-eval transfer: PGO must not blow up on held-out data.
        assert gain >= -8.0, (net, gain)
        gains.append(gain)
    assert max(gains) >= 3.0, f"PGO should win clearly somewhere: {gains}"
