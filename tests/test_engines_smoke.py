"""One tiny sweep end-to-end under the vectorized engine.

Covers the full per-instance path the exhibits exercise — profile a
network with the vector simulator, map it, weight the mapping with the
profile, execute it on the processor model and price the result — with
``$REPRO_SIM_ENGINE`` pinned to ``vector``, so a regression anywhere in
the engine selection plumbing fails fast in the tier-1 run.
"""

import pytest

from repro.mapping.greedy import greedy_first_fit
from repro.mapping.local_search import LocalSearchOptions, local_search
from repro.mapping.metrics import evaluate_mapping
from repro.mapping.problem import MappingProblem
from repro.mca.architecture import heterogeneous_architecture
from repro.mca.energy import cost_summary
from repro.mca.processor import MappedProcessor
from repro.snn.generators import random_network
from repro.snn.simulator import Simulator, spike_profile

pytestmark = pytest.mark.engines

DURATION = 24


def test_tiny_sweep_end_to_end_vector_engine(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_ENGINE", "vector")
    net = random_network(16, 32, seed=9, max_fan_in=6, name="smoke")

    # Profile: W[i] over a few input programs.
    samples = [
        {nid: list(range(offset, DURATION, 5)) for nid in (0, 3, 7)}
        for offset in (0, 1, 2)
    ]
    profile = spike_profile(net, samples, DURATION)
    assert set(profile) == set(net.neuron_ids())
    assert sum(profile.values()) > 0

    # Map: greedy start refined by (delta-evaluated) local search.
    problem = MappingProblem(net, heterogeneous_architecture(16))
    mapping = local_search(
        problem, greedy_first_fit(problem), LocalSearchOptions(max_rounds=3)
    )
    assert mapping.is_valid()
    metrics = evaluate_mapping(mapping, spike_counts=profile)
    assert metrics.total_packets is not None
    assert metrics.total_packets >= 0

    # Execute on the processor model (vector engine via env var) and price.
    proc = MappedProcessor(net, mapping.assignment, problem.architecture)
    assert proc._simulator.engine == "vector"
    sim_result, traffic = proc.run(DURATION, input_spikes=samples[0])
    assert sim_result.total_spikes > 0
    assert traffic.total_packets >= traffic.global_packets
    summary = cost_summary(
        problem.architecture, mapping.assignment, traffic, DURATION
    )
    assert summary.total_energy_pj > 0
    assert summary.area_memristors == pytest.approx(mapping.area())

    # The reference engine agrees on the same sweep (spot check).
    ref = Simulator(net, engine="reference").run(
        DURATION, input_spikes=samples[0]
    )
    assert ref.spikes == sim_result.spikes
    assert mapping.packet_count(ref.spike_counts) == (
        traffic.local_packets,
        traffic.global_packets,
    )
