#!/usr/bin/env python
"""Batch sweep: map a fleet of networks in parallel with a solver portfolio.

Walks the sweep-scale API end to end:

1. generate eight independent sparse SNNs,
2. build one area+SNU mapping job per network,
3. run them serially, then across a process pool (same results, less wall
   clock on multi-core machines),
4. race HiGHS against the branch-and-bound backend per stage (portfolio),
5. re-run the sweep against a result cache and watch every job hit.

Run:  python examples/batch_sweep.py
"""

import time

from repro.batch import BatchJob, BatchMapper, ResultCache
from repro.mca import homogeneous_architecture
from repro.snn import random_network


def make_jobs(count: int = 8) -> list[BatchJob]:
    # Sized so every solve reaches proven optimality well within budget:
    # optimal solves are deterministic, so the pooled sweep reproduces the
    # serial one exactly.  (Wall-clock-limited solves would return
    # timing-dependent incumbents under CPU contention.)
    jobs = []
    for i in range(count):
        network = random_network(18, 36, seed=300 + i, max_fan_in=6,
                                 name=f"sweep-{i}")
        architecture = homogeneous_architecture(network.num_neurons, dimension=8)
        jobs.append(
            BatchJob(
                name=network.name,
                network=network,
                architecture=architecture,
                stages=("area", "snu"),
                area_time_limit=30.0,
                route_time_limit=15.0,
            )
        )
    return jobs


def timed(label: str, mapper: BatchMapper, jobs: list[BatchJob]):
    start = time.perf_counter()
    result = mapper.map_all(jobs)
    elapsed = time.perf_counter() - start
    print(f"\n== {label} ({elapsed:.1f}s wall) ==")
    print(result.report())
    return result, elapsed


def main() -> None:
    jobs = make_jobs()

    # 1. Serial baseline: jobs=1 is exactly the plain loop.
    serial, serial_wall = timed("serial", BatchMapper(jobs=1), jobs)

    # 2. Pooled: identical per-problem results, overlapped wall clock.
    pooled, pooled_wall = timed("pooled (4 workers)", BatchMapper(jobs=4), jobs)
    identical = all(
        a.final().mapping.assignment == b.final().mapping.assignment
        for a, b in zip(serial, pooled)
    )
    print(f"pooled == serial: {identical}; "
          f"speedup {serial_wall / max(pooled_wall, 1e-9):.2f}x")

    # 3. Portfolio: each stage races HiGHS vs branch-and-bound.
    portfolio, _ = timed(
        "portfolio", BatchMapper(jobs=4, portfolio=True), jobs[:4]
    )
    winners = {r.name: r.final().solve_result.backend for r in portfolio}
    print(f"stage winners: {winners}")

    # 4. Cached re-run: the fingerprint turns the second sweep into lookups.
    cache = ResultCache()
    mapper = BatchMapper(jobs=1, cache=cache)
    mapper.map_all(jobs)
    _, cached_wall = timed("cached re-run", mapper, jobs)
    print(f"cache: {cache.stats.hits} hits / {cache.stats.lookups} lookups, "
          f"re-run took {cached_wall:.2f}s")


if __name__ == "__main__":
    main()
