"""Fig. 5 bench: SNU route minimization, homogeneous target.

Shape: routes never increase, area never increases, and at least one
network improves strictly (paper: 9.2-26.9% reduction).
"""

from bench_config import SMALL, once
from repro.experiments.fig5 import run_fig5


def test_benchmark_fig5(benchmark):
    result = once(benchmark, lambda: run_fig5(SMALL))
    improvements = []
    for net, _area, before, after, gain in result.rows:
        assert after <= before, (net, before, after)
        improvements.append(before - after)
    assert max(improvements) > 0, "SNU should strictly improve somewhere"
