"""Tests for the Network graph structure."""

import pytest

from repro.snn.network import Network, Neuron, Synapse


class TestNeuronAndSynapseValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="threshold"):
            Neuron(0, threshold=0.0)

    def test_leak_range(self):
        with pytest.raises(ValueError, match="leak"):
            Neuron(0, leak=1.5)

    def test_delay_at_least_one(self):
        with pytest.raises(ValueError, match="delay"):
            Synapse(0, 1, delay=0)


class TestConstruction:
    def test_auto_id_assignment(self):
        net = Network()
        a = net.add_neuron()
        b = net.add_neuron()
        assert (a.id, b.id) == (0, 1)

    def test_auto_id_skips_holes(self):
        net = Network()
        net.add_neuron(5)
        assert net.add_neuron().id == 6

    def test_duplicate_neuron_rejected(self):
        net = Network()
        net.add_neuron(0)
        with pytest.raises(ValueError, match="already exists"):
            net.add_neuron(0)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Network().add_neuron(-1)

    def test_synapse_requires_endpoints(self):
        net = Network()
        net.add_neuron(0)
        with pytest.raises(KeyError):
            net.add_synapse(0, 1)
        with pytest.raises(KeyError):
            net.add_synapse(2, 0)

    def test_duplicate_synapse_rejected(self):
        net = Network()
        net.add_neuron(0)
        net.add_neuron(1)
        net.add_synapse(0, 1)
        with pytest.raises(ValueError, match="already exists"):
            net.add_synapse(0, 1)


class TestAdjacency:
    @pytest.fixture
    def diamond(self):
        # 0 -> {1, 2} -> 3
        net = Network("diamond")
        for i in range(4):
            net.add_neuron(i)
        net.add_synapse(0, 1)
        net.add_synapse(0, 2)
        net.add_synapse(1, 3)
        net.add_synapse(2, 3)
        return net

    def test_predecessors_successors(self, diamond):
        assert diamond.predecessors(3) == {1, 2}
        assert diamond.successors(0) == {1, 2}

    def test_fan_counts(self, diamond):
        assert diamond.fan_in(3) == 2
        assert diamond.fan_out(0) == 2
        assert diamond.fan_in(0) == 0

    def test_pred_sets_is_connectivity_matrix(self, diamond):
        preds = diamond.pred_sets()
        assert preds == {0: set(), 1: {0}, 2: {0}, 3: {1, 2}}

    def test_remove_synapse_updates_adjacency(self, diamond):
        diamond.remove_synapse(0, 1)
        assert diamond.successors(0) == {2}
        assert diamond.predecessors(1) == set()

    def test_remove_neuron_removes_incident_synapses(self, diamond):
        diamond.remove_neuron(1)
        assert not diamond.has_neuron(1)
        assert diamond.successors(0) == {2}
        assert diamond.predecessors(3) == {2}
        assert diamond.num_synapses == 2

    def test_replace_neuron_keeps_synapses(self, diamond):
        from dataclasses import replace

        diamond.replace_neuron(replace(diamond.neuron(1), threshold=2.0))
        assert diamond.neuron(1).threshold == 2.0
        assert diamond.predecessors(1) == {0}

    def test_replace_synapse(self, diamond):
        from dataclasses import replace

        diamond.replace_synapse(replace(diamond.synapse(0, 1), weight=5.0))
        assert diamond.synapse(0, 1).weight == 5.0

    def test_replace_missing_raises(self, diamond):
        from dataclasses import replace

        with pytest.raises(KeyError):
            diamond.replace_synapse(replace(diamond.synapse(0, 1), pre=3, post=0))


class TestTransforms:
    def test_copy_is_independent(self):
        net = Network()
        net.add_neuron(0)
        net.add_neuron(1)
        net.add_synapse(0, 1)
        clone = net.copy()
        clone.remove_synapse(0, 1)
        assert net.has_synapse(0, 1)
        assert not clone.has_synapse(0, 1)

    def test_compact_renumbers_sorted(self):
        net = Network()
        net.add_neuron(10)
        net.add_neuron(3)
        net.add_neuron(7)
        net.add_synapse(10, 3)
        compacted, mapping = net.compact()
        assert compacted.neuron_ids() == [0, 1, 2]
        assert mapping == {3: 0, 7: 1, 10: 2}
        assert compacted.has_synapse(2, 0)

    def test_is_compact(self):
        net = Network()
        net.add_neuron(0)
        assert net.is_compact()
        net.add_neuron(2)
        assert not net.is_compact()

    def test_subnetwork_induced_edges(self):
        net = Network()
        for i in range(4):
            net.add_neuron(i)
        net.add_synapse(0, 1)
        net.add_synapse(1, 2)
        net.add_synapse(2, 3)
        sub = net.subnetwork([1, 2])
        assert sub.num_neurons == 2
        assert sub.has_synapse(1, 2)
        assert sub.num_synapses == 1

    def test_subnetwork_unknown_id_raises(self):
        net = Network()
        net.add_neuron(0)
        with pytest.raises(KeyError):
            net.subnetwork([0, 9])

    def test_to_networkx_round_trip_structure(self):
        net = Network()
        net.add_neuron(0, threshold=2.0, is_input=True)
        net.add_neuron(1, is_output=True)
        net.add_synapse(0, 1, weight=0.5, delay=3)
        graph = net.to_networkx()
        assert graph.nodes[0]["threshold"] == 2.0
        assert graph.nodes[0]["is_input"]
        assert graph.edges[0, 1]["delay"] == 3

    def test_io_marker_queries(self):
        net = Network()
        net.add_neuron(0, is_input=True)
        net.add_neuron(1)
        net.add_neuron(2, is_output=True)
        assert net.input_ids() == [0]
        assert net.output_ids() == [2]
