"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.snn.generators import random_network
from repro.snn.io import save_network


@pytest.fixture
def network_file(tmp_path):
    net = random_network(14, 28, seed=44, max_fan_in=6, name="cli-net")
    path = tmp_path / "net.json"
    save_network(net, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self):
        args = build_parser().parse_args(["map", "net.json"])
        assert args.output == "mapping.json"
        assert not args.homogeneous


class TestBench:
    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.benches == []
        assert not args.trajectory_only

    def test_bench_accepts_names(self):
        args = build_parser().parse_args(["bench", "ilp", "simulator"])
        assert args.benches == ["ilp", "simulator"]

    def test_bench_outside_repo_fails_cleanly(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench"]) == 2
        assert "benchmarks/" in capsys.readouterr().err

    def test_bench_rejects_unknown_bench(self, monkeypatch, tmp_path, capsys):
        (tmp_path / "benchmarks").mkdir()
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "no-such-bench"]) == 2
        assert "unknown bench" in capsys.readouterr().err


class TestInspect:
    def test_prints_statistics(self, network_file, capsys):
        assert main(["inspect", str(network_file)]) == 0
        out = capsys.readouterr().out
        assert "neurons" in out
        assert "gini (incoming)" in out
        assert "depth (synapses)" in out


class TestBatch:
    def test_batch_maps_many_networks(self, tmp_path, capsys):
        paths = []
        for i in range(2):
            net = random_network(10, 20, seed=70 + i, max_fan_in=5, name=f"b{i}")
            path = tmp_path / f"b{i}.json"
            save_network(net, path)
            paths.append(str(path))
        out_dir = tmp_path / "maps"
        code = main(
            ["batch", *paths, "--homogeneous", "--dimension", "8",
             "--time-limit", "3", "-o", str(out_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "b0" in out and "b1" in out
        assert sorted(p.name for p in out_dir.glob("*.json")) == [
            "b0.mapping.json", "b1.mapping.json",
        ]

    def test_batch_deduplicates_same_basename_inputs(self, tmp_path, capsys):
        """net.json from two directories must not collide."""
        paths = []
        for sub in ("a", "b"):
            net = random_network(10, 20, seed=71, max_fan_in=5, name=sub)
            (tmp_path / sub).mkdir()
            path = tmp_path / sub / "net.json"
            save_network(net, path)
            paths.append(str(path))
        code = main(
            ["batch", *paths, "--homogeneous", "--dimension", "8",
             "--time-limit", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "net " in out or "net\t" in out or "net  " in out
        assert "net-2" in out


class TestMapAndSimulate:
    def test_map_writes_valid_mapping(self, network_file, tmp_path, capsys):
        out_path = tmp_path / "mapping.json"
        code = main(
            ["map", str(network_file), "-o", str(out_path), "--time-limit", "5"]
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["assignment"]
        assert "area stage" in capsys.readouterr().out

    def test_map_homogeneous_with_snu(self, network_file, tmp_path, capsys):
        out_path = tmp_path / "mapping.json"
        code = main(
            [
                "map", str(network_file),
                "-o", str(out_path),
                "--homogeneous", "--dimension", "8",
                "--snu", "--time-limit", "5",
            ]
        )
        assert code == 0
        assert "SNU stage" in capsys.readouterr().out

    def test_simulate_round_trip(self, network_file, tmp_path, capsys):
        out_path = tmp_path / "mapping.json"
        main(["map", str(network_file), "-o", str(out_path), "--time-limit", "4"])
        code = main(["simulate", str(out_path), "--duration", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "global packets" in out
        assert "energy estimate" in out


class TestExhibitsForwarding:
    def test_table2_via_cli(self, capsys):
        assert main(["exhibits", "--exhibit", "table2"]) == 0
        assert "32x32" in capsys.readouterr().out


class TestDse:
    TINY = ["--networks", "C", "--scale", "0.1", "--profiles", "uniform",
            "--dimensions", "12", "--no-heterogeneous", "--time-limit", "4"]

    def test_dse_parser_defaults(self):
        args = build_parser().parse_args(["dse"])
        assert args.driver == "adaptive"
        assert args.networks == ["C", "E"]
        assert args.budget_fraction == 0.5

    def test_grid_sweep_emits_frontier_and_resumes(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        summary = tmp_path / "frontier.json"
        code = main(["dse", "--driver", "grid", "--store", str(store),
                     "--json", str(summary), *self.TINY])
        assert code == 0
        out = capsys.readouterr().out
        assert "non-dominated" in out
        assert "2 scenario(s)" in out
        payload = json.loads(summary.read_text())
        assert payload["driver"] == "grid"
        assert payload["frontier"]
        assert payload["ilp_solves"] > 0

        # Same store, same space: everything comes back without a solve.
        assert main(["dse", "--driver", "grid", "--store", str(store),
                     *self.TINY]) == 0
        out = capsys.readouterr().out
        assert "resuming past" in out
        assert "0 ILP solve(s)" in out

    def test_adaptive_sweep_runs(self, capsys):
        assert main(["dse", "--driver", "adaptive", *self.TINY]) == 0
        assert "[adaptive]" in capsys.readouterr().out

    def test_partial_failure_fails_the_command(self, capsys):
        # dimension 4 cannot host C@0.1 (fan-in 8): one of the two pools
        # fails, so the sweep must exit non-zero for CI visibility.
        code = main(["dse", "--driver", "grid", "--networks", "C",
                     "--scale", "0.1", "--profiles", "uniform",
                     "--dimensions", "4", "12", "--no-heterogeneous",
                     "--no-snu", "--time-limit", "4"])
        assert code == 1
        out = capsys.readouterr().out
        assert "scenario(s) failed" in out
        assert "fan-in" in out
